#include "workload/catalog.hh"

#include <cmath>

#include "sim/log.hh"

namespace kelp {
namespace wl {

namespace {

/**
 * RNN1: natural-language-processing inference on the TPU platform.
 * Interaction: beam search on the host between accelerator calls
 * (Figure 3's timeline). Table I: CPU intensity Medium, host memory
 * intensity Low.
 *
 * Calibration targets: sub-millisecond phase interleaving (Fig. 3);
 * CPU-phase inflation ~51% and tail +70% under a heavy aggressor
 * (Fig. 3); QPS -14% / tail +16% with subdomains and unmanaged
 * backpressure (Fig. 7a); moderate DRAM sensitivity in Fig. 5.
 */
MlDesc
makeRnn1()
{
    MlDesc d;
    d.id = MlWorkload::Rnn1;
    d.name = "RNN1";
    d.platform = accel::Kind::TpuV1;
    d.inference = true;
    d.mlCores = 4;
    d.description = "Natural language processing";
    d.interaction = "Beam search";
    d.cpuIntensity = "Medium";
    d.memIntensity = "Low";

    HostPhaseParams beam;
    beam.cpuFrac = 0.50;          // beam search: sort + expand, mixed
    beam.bwPerCore = 1.8;         // low BW demand (Table I: Low)
    beam.parallelism = 2;
    beam.prefetch = {0.30, 0.45}; // pointer-ish accesses: modest PF
    beam.latencySensitivity = 0.65; // sorted expansion: partial MLP
    beam.llcFootprintMb = 6.0;
    beam.llcHitMax = 0.85;
    beam.llcWeight = 2.0;          // hot reuse defends occupancy

    StepGraph iter;
    iter.stages.push_back({{hostSegment(0.55 * sim::msec, beam)}});
    iter.stages.push_back({{pcieSegment(0.15 * sim::msec)}});
    iter.stages.push_back({{accelSegment(0.25 * sim::msec)}});

    d.infer.iteration = iter;
    d.infer.itersPerRequest = 5;
    // Closed-loop pipelined load generation at the knee
    // (Section V-A: requests "generated in a parallel and pipelined
    // fashion"; the sweep picks the knee of the throughput-latency
    // curve). The host beam-search station is the standalone
    // bottleneck, so host interference converts directly into QPS
    // loss and tail inflation, as in Figures 3 and 10.
    d.infer.pipelineDepth = 3;
    d.infer.closedLoop = true;
    return d;
}

/**
 * CNN1: image-recognition training on Cloud TPU. Interaction: data
 * in-feed overlapping accelerator compute. Table I: CPU intensity
 * Low, host memory intensity Low -- yet CNN1 is the *most* sensitive
 * workload because its in-feed is on the step critical path and is
 * latency-bound (Figure 7b: -50% under heavy contention; Figure 9a:
 * up to -60% in Baseline; +9% over standalone at best under SNC).
 */
MlDesc
makeCnn1()
{
    MlDesc d;
    d.id = MlWorkload::Cnn1;
    d.name = "CNN1";
    d.platform = accel::Kind::CloudTpu;
    d.mlCores = 4;
    d.description = "Image recognition";
    d.interaction = "Data in-feed";
    d.cpuIntensity = "Low";
    d.memIntensity = "Low";

    HostPhaseParams infeed;
    infeed.cpuFrac = 0.22;        // decode/reshape: stall-dominated
    infeed.bwPerCore = 1.6;       // low absolute demand (Table I)
    infeed.parallelism = 4;
    infeed.prefetch = {0.40, 0.60};
    infeed.latencySensitivity = 1.0; // decode chains stall on misses
    infeed.llcFootprintMb = 6.0;
    infeed.llcHitMax = 0.75;
    infeed.llcWeight = 3.0;          // hot decode tables defend well

    StepGraph step;
    // In-feed is the critical path standalone (3.2 > 2.8 ms): the SNC
    // latency bonus shows up as end-to-end gain (Fig. 7b best case).
    step.stages.push_back({{hostSegment(3.2 * sim::msec, infeed),
                            accelSegment(2.8 * sim::msec)}});
    step.stages.push_back({{pcieSegment(0.15 * sim::msec)}});
    d.step = step;
    return d;
}

/**
 * CNN2: image-recognition training on Cloud TPU with a heavier,
 * more compute-balanced host component. Table I: CPU intensity High,
 * host memory intensity Medium. The in-feed is off the critical path
 * standalone, so CNN2 tolerates contention better (Figure 7c: -10%
 * under heavy contention with subdomains).
 */
MlDesc
makeCnn2()
{
    MlDesc d;
    d.id = MlWorkload::Cnn2;
    d.name = "CNN2";
    d.platform = accel::Kind::CloudTpu;
    d.mlCores = 8;
    d.description = "Image recognition";
    d.interaction = "Data in-feed";
    d.cpuIntensity = "High";
    d.memIntensity = "Medium";

    HostPhaseParams infeed;
    infeed.cpuFrac = 0.60;        // augmentation-heavy: compute-rich
    infeed.bwPerCore = 3.2;       // medium demand (Table I)
    infeed.parallelism = 8;
    infeed.prefetch = {0.35, 0.55};
    infeed.latencySensitivity = 0.4;
    infeed.llcFootprintMb = 8.0;
    infeed.llcHitMax = 0.80;
    infeed.llcWeight = 1.5;

    StepGraph step;
    step.stages.push_back({{hostSegment(3.4 * sim::msec, infeed),
                            accelSegment(3.6 * sim::msec)}});
    step.stages.push_back({{pcieSegment(0.20 * sim::msec)}});
    d.step = step;
    return d;
}

/**
 * CNN3: distributed image-recognition training on the GPU platform.
 * Interaction: parameter-server aggregation on the host -- streaming
 * reduction over the model's variables, bandwidth-bound. Table I:
 * CPU intensity Low, host memory intensity High. Training steps are
 * lock-step, so the slowest parameter server gates the service
 * (Section III-A); the host phase is serialized with GPU compute.
 */
MlDesc
makeCnn3()
{
    MlDesc d;
    d.id = MlWorkload::Cnn3;
    d.name = "CNN3";
    d.platform = accel::Kind::Gpu;
    d.mlCores = 6;
    d.description = "Image recognition";
    d.interaction = "Parameter server";
    d.cpuIntensity = "Low";
    d.memIntensity = "High";

    HostPhaseParams ps;
    ps.cpuFrac = 0.12;            // streaming reduce: BW-bound
    ps.bwPerCore = 5.5;           // high demand (Table I: High)
    ps.parallelism = 6;
    ps.prefetch = {0.50, 0.70};   // very prefetch-friendly streams
    ps.latencySensitivity = 0.25; // high-MLP reduction streams
    ps.llcFootprintMb = 40.0;     // model shards exceed the LLC
    ps.llcHitMax = 0.30;
    ps.llcWeight = 1.4;

    StepGraph step;
    step.stages.push_back({{accelSegment(7.5 * sim::msec)}});
    step.stages.push_back({{hostSegment(5.0 * sim::msec, ps)}});
    step.stages.push_back({{pcieSegment(0.30 * sim::msec)}});
    d.step = step;
    return d;
}

} // namespace

std::vector<MlWorkload>
allMlWorkloads()
{
    return {MlWorkload::Rnn1, MlWorkload::Cnn1, MlWorkload::Cnn2,
            MlWorkload::Cnn3};
}

std::vector<CpuWorkload>
evaluationCpuWorkloads()
{
    return {CpuWorkload::Stream, CpuWorkload::Stitch,
            CpuWorkload::Cpuml};
}

MlDesc
mlDesc(MlWorkload w)
{
    switch (w) {
      case MlWorkload::Rnn1:
        return makeRnn1();
      case MlWorkload::Cnn1:
        return makeCnn1();
      case MlWorkload::Cnn2:
        return makeCnn2();
      case MlWorkload::Cnn3:
        return makeCnn3();
    }
    sim::panic("unknown ML workload");
}

const char *
mlName(MlWorkload w)
{
    switch (w) {
      case MlWorkload::Rnn1:
        return "RNN1";
      case MlWorkload::Cnn1:
        return "CNN1";
      case MlWorkload::Cnn2:
        return "CNN2";
      case MlWorkload::Cnn3:
        return "CNN3";
    }
    return "?";
}

const char *
cpuName(CpuWorkload w)
{
    switch (w) {
      case CpuWorkload::Stream:
        return "Stream";
      case CpuWorkload::Stitch:
        return "Stitch";
      case CpuWorkload::Cpuml:
        return "CPUML";
      case CpuWorkload::LlcAggressor:
        return "LLC";
      case CpuWorkload::DramAggressor:
        return "DRAM";
    }
    return "?";
}

HostPhaseParams
cpuParams(CpuWorkload w, double platform_llc_mb)
{
    HostPhaseParams p;
    switch (w) {
      case CpuWorkload::Stream:
        // Large-array traversal that never fits in the LLC
        // (Section V-A). Pure bandwidth hog.
        p.cpuFrac = 0.06;
        p.bwPerCore = 6.0;
        p.latencySensitivity = 0.15;
        p.prefetch = {0.50, 0.75};
        p.llcFootprintMb = 512.0;
        p.llcHitMax = 0.05;
        p.llcWeight = 1.5;
        break;
      case CpuWorkload::Stitch:
        // Street View panorama stitching: mixed compute and memory,
        // "aggressively contends for BW" (Section V-B). Instances
        // are 4-threaded; six of them approach socket peak bandwidth
        // (Figure 9a drives CNN1 down ~60% in Baseline).
        p.cpuFrac = 0.35;
        p.bwPerCore = 4.5;
        p.latencySensitivity = 0.50;
        p.prefetch = {0.40, 0.55};
        p.llcFootprintMb = 24.0;
        p.llcHitMax = 0.55;
        p.llcWeight = 1.2;
        break;
      case CpuWorkload::Cpuml:
        // TensorFlow-Slim CNN training on CPUs: compute-heavy,
        // cache-friendly, moderate bandwidth (Section V-B: "less
        // aggressive").
        p.cpuFrac = 0.55;
        p.bwPerCore = 2.6;
        p.latencySensitivity = 0.70;
        p.prefetch = {0.35, 0.50};
        p.llcFootprintMb = 20.0;
        p.llcHitMax = 0.80;
        p.llcWeight = 1.0;
        break;
      case CpuWorkload::LlcAggressor:
        // Synthetic LLC/SMT aggressor: dataset sized to exactly fit
        // the LLC (Section III-B), hammering cache and pipeline.
        p.cpuFrac = 0.30;
        p.bwPerCore = 1.0;
        p.latencySensitivity = 0.60;
        p.prefetch = {0.10, 0.20};
        p.llcFootprintMb = platform_llc_mb;
        p.llcHitMax = 0.98;
        p.llcWeight = 2.0;
        break;
      case CpuWorkload::DramAggressor:
        // Synthetic DRAM-bandwidth aggressor: traverses an array far
        // larger than the LLC (Section III-B).
        p.cpuFrac = 0.05;
        p.bwPerCore = 9.0;
        p.latencySensitivity = 0.10;
        p.prefetch = {0.50, 0.75};
        p.llcFootprintMb = 1024.0;
        p.llcHitMax = 0.02;
        p.llcWeight = 1.5;
        break;
    }
    return p;
}

int
threadsPerInstance(CpuWorkload w)
{
    return w == CpuWorkload::Stitch ? 4 : 1;
}

int
aggressorThreads(AggressorLevel level, double subdomain_bw_gibps)
{
    // Levels are defined relative to the capacity of one NUMA
    // subdomain: Low keeps clear headroom, Medium sits at the edge,
    // High oversubscribes the subdomain's controller.
    double per_core = cpuParams(CpuWorkload::DramAggressor).bwPerCore;
    double factor = 0.7;
    switch (level) {
      case AggressorLevel::Low:
        factor = 0.7;
        break;
      case AggressorLevel::Medium:
        factor = 1.05;
        break;
      case AggressorLevel::High:
        factor = 1.4;
        break;
    }
    return std::max(1, static_cast<int>(
        std::ceil(subdomain_bw_gibps * factor / per_core)));
}

int
saturatingDramThreads(double peak_bw_gibps)
{
    // Just-saturating: offered load ~95% of peak, the knee of the
    // bandwidth-latency curve. (A grossly oversubscribed aggressor
    // starves itself through fair-share and pins the socket at the
    // latency clamp, which is not how the paper's synthetic behaves.)
    double per_core = cpuParams(CpuWorkload::DramAggressor).bwPerCore;
    return static_cast<int>(std::ceil(peak_bw_gibps * 0.95 / per_core));
}

const char *
aggressorLevelName(AggressorLevel level)
{
    switch (level) {
      case AggressorLevel::Low:
        return "L";
      case AggressorLevel::Medium:
        return "M";
      case AggressorLevel::High:
        return "H";
    }
    return "?";
}

const std::vector<ChurnArchetype> &
churnMix()
{
    // Same WSC batch population the fleet profiler draws from
    // (fleet.cc archetype weights), with lifetimes in the
    // minutes-not-hours range of Section II's batch jobs: CPU-side ML
    // dominates the arrivals, image stitching turns over quickest,
    // and streaming analytics runs narrow but long.
    static const std::vector<ChurnArchetype> mix = {
        {CpuWorkload::Cpuml, 0.45, 90.0, 2, 8},
        {CpuWorkload::Stitch, 0.35, 60.0, 2, 6},
        {CpuWorkload::Stream, 0.20, 120.0, 1, 4},
    };
    return mix;
}

} // namespace wl
} // namespace kelp
