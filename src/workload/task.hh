/**
 * @file
 * Task abstraction: the unit of placement and progress.
 *
 * The node drives every task through a two-pass protocol each tick:
 *
 *  1. bwDemand(env) -- the task reports its memory bandwidth demand
 *     given its current phase and the pre-resolve environment (cores,
 *     prefetchers, LLC hit rate, last tick's achieved speed).
 *  2. advance(dt, env) -- after the memory system resolves, the task
 *     advances its phase/step state using the post-resolve environment
 *     (effective latency, granted bandwidth fraction, throttle).
 *
 * hostSpeed() encodes the shared performance model: how a host phase's
 * execution speed responds to the environment. It is the single place
 * where latency, bandwidth, prefetcher, SMT, and distress effects
 * combine, used by ML host segments and batch tasks alike.
 */

#ifndef KELP_WORKLOAD_TASK_HH
#define KELP_WORKLOAD_TASK_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"
#include "workload/phase.hh"

namespace kelp {
namespace wl {

/** Explicit data-placement share (Remote-DRAM style experiments). */
struct DataShare
{
    sim::SocketId socket = 0;
    sim::SubdomainId subdomain = 0;
    double fraction = 1.0;
};

/** Environment a task executes in during one tick. */
struct ExecEnv
{
    /** Socket the task's threads run on. */
    sim::SocketId socket = 0;

    /** Cores effectively available to this task (may be fractional
     * under fair sharing; includes the SMT bonus capacity). */
    double effCores = 1.0;

    /** Throughput factor from SMT sibling sharing, in (0, 1]. */
    double smtFactor = 1.0;

    /** Current LLC miss rate / standalone miss rate (>= 0). */
    double missRatio = 1.0;

    /** Fraction of the group's prefetchers enabled, in [0, 1]. */
    double pfFraction = 1.0;

    /** Distress-signal core throttle from the previous tick. */
    double throttle = 1.0;

    /** Effective memory latency observed this tick, ns. */
    sim::Nanoseconds latencyNs = 90.0;

    /** Unloaded memory latency, ns. */
    sim::Nanoseconds baseLatencyNs = 90.0;

    /** Granted fraction of demanded bandwidth, in [0, 1]. */
    double bwFraction = 1.0;
};

/** Execution speeds of a host phase under an environment. */
struct HostSpeeds
{
    /** Achieved relative speed (1.0 = standalone), including
     * bandwidth starvation. */
    double speed = 1.0;

    /**
     * Speed the phase would run at if all demanded bandwidth were
     * granted (latency stalls, throttling, and SMT only). This is
     * the correct demand basis: a bandwidth-starved streaming task
     * keeps *offering* its full load -- that pressure is what
     * saturates controllers and asserts the distress signal.
     */
    double demandSpeed = 1.0;
};

/**
 * Relative execution speeds of a host phase under the given
 * environment.
 *
 * Combines: memory-stall inflation from latency, LLC misses and
 * prefetcher stall exposure; bandwidth starvation (bounded by last
 * tick's demand basis); distress throttling; and SMT contention.
 *
 * @param p Host-phase response parameters.
 * @param env The execution environment.
 * @param demand_basis Relative speed assumed when demand was
 *        submitted (the task's smoothed demandSpeed).
 */
HostSpeeds hostSpeeds(const HostPhaseParams &p, const ExecEnv &env,
                      double demand_basis);

/** Achieved speed only (convenience). */
double hostSpeed(const HostPhaseParams &p, const ExecEnv &env,
                 double demand_basis);

/**
 * Bandwidth demand (GiB/s) of a host phase running on the given
 * number of cores at the given relative speed.
 */
double hostDemand(const HostPhaseParams &p, double cores,
                  double speed_basis, double miss_ratio,
                  double pf_fraction);

/**
 * Lifecycle state of a placed task. Dynamic colocations (churn) move
 * tasks through this machine: batch antagonists arrive Running,
 * leave as Finished or Crashed, and the SLO degradation ladder can
 * park a bandwidth hog in Suspended and later resume it. A task only
 * holds cores, generates memory traffic, and makes progress while
 * Running; every other state freezes it in place (its completed work
 * and placement id survive for reporting).
 */
enum class LifeState { Running, Suspended, Finished, Crashed };

const char *lifeStateName(LifeState s);

/**
 * Legality of a lifecycle transition. Running and Suspended move
 * freely between each other and into either terminal state
 * (retirement wins over suspension); Finished and Crashed are
 * terminal -- a retired task never runs again, its id and completed
 * work only survive for reporting.
 */
constexpr bool
legalLifeTransition(LifeState from, LifeState to)
{
    return from == to || from == LifeState::Running ||
           from == LifeState::Suspended;
}

/** Base class for all workloads. */
class Task
{
  public:
    Task(std::string name, sim::GroupId group);
    virtual ~Task() = default;

    const std::string &name() const { return name_; }
    sim::GroupId group() const { return group_; }

    /** Current lifecycle state (Running for the static paper path). */
    LifeState lifeState() const { return lifeState_; }

    void
    setLifeState(LifeState s)
    {
        KELP_INVARIANT(legalLifeTransition(lifeState_, s),
                       "illegal lifecycle transition ",
                       lifeStateName(lifeState_), " -> ",
                       lifeStateName(s), " for task '", name_, "'");
        lifeState_ = s;
        noteChange();
    }

    /** True while the task is scheduled and making progress. */
    bool runnable() const { return lifeState_ == LifeState::Running; }

    /** Unique task id, assigned by the node at placement time. */
    int id() const { return id_; }
    void setId(int id) { id_ = id; }

    /** Socket this task's threads run on. */
    sim::SocketId homeSocket() const { return homeSocket_; }
    void
    setHomeSocket(sim::SocketId s)
    {
        homeSocket_ = s;
        noteChange();
    }

    /**
     * Explicit data placement. Empty means "allocate local": demand is
     * split across the subdomains in proportion to the group's cores.
     */
    const std::vector<DataShare> &dataPlacement() const
    {
        return dataPlacement_;
    }
    void setDataPlacement(std::vector<DataShare> placement);

    /** Number of software threads the task wants to run. */
    virtual int threadsWanted() const = 0;

    /** Pass 1: bandwidth demand for this tick, GiB/s. */
    virtual sim::GiBps bwDemand(const ExecEnv &env) = 0;

    /** Pass 2: advance task state through dt. */
    virtual void advance(sim::Time dt, const ExecEnv &env) = 0;

    /** Cumulative completed work (task-specific units). */
    virtual double completedWork() const = 0;

    /** Host-phase LLC characteristics for apportionment. */
    virtual HostPhaseParams llcProfile() const = 0;

    /** Smoothed achieved relative speed (demand feedback basis). */
    double demandBasis() const { return demandBasis_; }

    /**
     * Hook fired whenever externally-visible task state mutates
     * (lifecycle, placement, threads, request submission). The node
     * uses it to invalidate its quiescence state.
     */
    void setChangeHook(std::function<void()> hook)
    {
        changeHook_ = std::move(hook);
    }

    /**
     * Fast-path protocol, used only while the node is quiescent (the
     * resolved environment repeats bit-for-bit tick over tick):
     *
     *  - fastPrepare(env, dt): cache whatever advance() would derive
     *    from this exact environment; return false to refuse (then
     *    the node keeps full-ticking this task).
     *  - fastTickReady(dt): true when one more tick of dt cannot
     *    cross an internal boundary (stage finish, arrival, ...).
     *    Must be const: refusal may happen after siblings accepted.
     *  - fastTickRun(dt): apply one tick using the cached values;
     *    bit-identical to advance(dt, env) with the prepared env.
     *    Returns false when the task must leave the fast path after
     *    this tick (the node falls back to full ticks).
     *
     * Default implementation refuses, which is always sound.
     */
    virtual bool fastPrepare(const ExecEnv &env, sim::Time dt)
    {
        (void)env;
        (void)dt;
        return false;
    }
    virtual bool fastTickReady(sim::Time dt) const
    {
        (void)dt;
        return false;
    }
    virtual bool fastTickRun(sim::Time dt)
    {
        (void)dt;
        return true;
    }

    /**
     * Batch extension of the fast-path protocol:
     *
     *  - fastHorizon(dt): a conservative LOWER bound on how many more
     *    ticks of dt this task could take with fastTickReady() true
     *    throughout and fastTickRun() never requesting an exit. 0
     *    means "no promise" and drops the node back to the per-tick
     *    ready/run stepping, so underestimating only costs speed.
     *  - fastTickRunMany(dt, n): apply exactly n fast ticks,
     *    bit-identical to n fastTickRun(dt) calls. Only invoked with
     *    n <= fastHorizon(dt), which lets kernels hoist per-tick
     *    invariants (cached speeds, settled demand basis) out of the
     *    loop and run one floating-point op chain per tick.
     */
    virtual uint64_t fastHorizon(sim::Time dt) const
    {
        (void)dt;
        return 0;
    }
    virtual void fastTickRunMany(sim::Time dt, uint64_t n)
    {
        for (uint64_t i = 0; i < n; ++i)
            fastTickRun(dt);
    }

  protected:
    /** Fold an achieved speed into the demand basis. */
    void updateDemandBasis(double achieved_speed);

    /**
     * The exact successor updateDemandBasis() would produce from
     * `basis` for this achieved speed. Exposed so the fast-path
     * kernels can decide settledness with the same arithmetic the
     * full path uses: the basis is settled iff the step returns its
     * input bit-for-bit.
     */
    static double demandBasisStep(double basis, double achieved_speed);

    /** True when updateDemandBasis(achieved_speed) would be a no-op. */
    bool demandBasisSettled(double achieved_speed) const
    {
        return demandBasisStep(demandBasis_, achieved_speed) ==
               demandBasis_;
    }

    /** Notify the owning node that task state changed. */
    void noteChange()
    {
        if (changeHook_)
            changeHook_();
    }

  private:
    std::string name_;
    sim::GroupId group_;
    int id_ = sim::invalidId;
    sim::SocketId homeSocket_ = 0;
    std::vector<DataShare> dataPlacement_;
    double demandBasis_ = 1.0;
    LifeState lifeState_ = LifeState::Running;
    std::function<void()> changeHook_;
};

} // namespace wl
} // namespace kelp

#endif // KELP_WORKLOAD_TASK_HH
