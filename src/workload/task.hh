/**
 * @file
 * Task abstraction: the unit of placement and progress.
 *
 * The node drives every task through a two-pass protocol each tick:
 *
 *  1. bwDemand(env) -- the task reports its memory bandwidth demand
 *     given its current phase and the pre-resolve environment (cores,
 *     prefetchers, LLC hit rate, last tick's achieved speed).
 *  2. advance(dt, env) -- after the memory system resolves, the task
 *     advances its phase/step state using the post-resolve environment
 *     (effective latency, granted bandwidth fraction, throttle).
 *
 * hostSpeed() encodes the shared performance model: how a host phase's
 * execution speed responds to the environment. It is the single place
 * where latency, bandwidth, prefetcher, SMT, and distress effects
 * combine, used by ML host segments and batch tasks alike.
 */

#ifndef KELP_WORKLOAD_TASK_HH
#define KELP_WORKLOAD_TASK_HH

#include <string>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"
#include "workload/phase.hh"

namespace kelp {
namespace wl {

/** Explicit data-placement share (Remote-DRAM style experiments). */
struct DataShare
{
    sim::SocketId socket = 0;
    sim::SubdomainId subdomain = 0;
    double fraction = 1.0;
};

/** Environment a task executes in during one tick. */
struct ExecEnv
{
    /** Socket the task's threads run on. */
    sim::SocketId socket = 0;

    /** Cores effectively available to this task (may be fractional
     * under fair sharing; includes the SMT bonus capacity). */
    double effCores = 1.0;

    /** Throughput factor from SMT sibling sharing, in (0, 1]. */
    double smtFactor = 1.0;

    /** Current LLC miss rate / standalone miss rate (>= 0). */
    double missRatio = 1.0;

    /** Fraction of the group's prefetchers enabled, in [0, 1]. */
    double pfFraction = 1.0;

    /** Distress-signal core throttle from the previous tick. */
    double throttle = 1.0;

    /** Effective memory latency observed this tick, ns. */
    sim::Nanoseconds latencyNs = 90.0;

    /** Unloaded memory latency, ns. */
    sim::Nanoseconds baseLatencyNs = 90.0;

    /** Granted fraction of demanded bandwidth, in [0, 1]. */
    double bwFraction = 1.0;
};

/** Execution speeds of a host phase under an environment. */
struct HostSpeeds
{
    /** Achieved relative speed (1.0 = standalone), including
     * bandwidth starvation. */
    double speed = 1.0;

    /**
     * Speed the phase would run at if all demanded bandwidth were
     * granted (latency stalls, throttling, and SMT only). This is
     * the correct demand basis: a bandwidth-starved streaming task
     * keeps *offering* its full load -- that pressure is what
     * saturates controllers and asserts the distress signal.
     */
    double demandSpeed = 1.0;
};

/**
 * Relative execution speeds of a host phase under the given
 * environment.
 *
 * Combines: memory-stall inflation from latency, LLC misses and
 * prefetcher stall exposure; bandwidth starvation (bounded by last
 * tick's demand basis); distress throttling; and SMT contention.
 *
 * @param p Host-phase response parameters.
 * @param env The execution environment.
 * @param demand_basis Relative speed assumed when demand was
 *        submitted (the task's smoothed demandSpeed).
 */
HostSpeeds hostSpeeds(const HostPhaseParams &p, const ExecEnv &env,
                      double demand_basis);

/** Achieved speed only (convenience). */
double hostSpeed(const HostPhaseParams &p, const ExecEnv &env,
                 double demand_basis);

/**
 * Bandwidth demand (GiB/s) of a host phase running on the given
 * number of cores at the given relative speed.
 */
double hostDemand(const HostPhaseParams &p, double cores,
                  double speed_basis, double miss_ratio,
                  double pf_fraction);

/**
 * Lifecycle state of a placed task. Dynamic colocations (churn) move
 * tasks through this machine: batch antagonists arrive Running,
 * leave as Finished or Crashed, and the SLO degradation ladder can
 * park a bandwidth hog in Suspended and later resume it. A task only
 * holds cores, generates memory traffic, and makes progress while
 * Running; every other state freezes it in place (its completed work
 * and placement id survive for reporting).
 */
enum class LifeState { Running, Suspended, Finished, Crashed };

const char *lifeStateName(LifeState s);

/**
 * Legality of a lifecycle transition. Running and Suspended move
 * freely between each other and into either terminal state
 * (retirement wins over suspension); Finished and Crashed are
 * terminal -- a retired task never runs again, its id and completed
 * work only survive for reporting.
 */
constexpr bool
legalLifeTransition(LifeState from, LifeState to)
{
    return from == to || from == LifeState::Running ||
           from == LifeState::Suspended;
}

/** Base class for all workloads. */
class Task
{
  public:
    Task(std::string name, sim::GroupId group);
    virtual ~Task() = default;

    const std::string &name() const { return name_; }
    sim::GroupId group() const { return group_; }

    /** Current lifecycle state (Running for the static paper path). */
    LifeState lifeState() const { return lifeState_; }

    void
    setLifeState(LifeState s)
    {
        KELP_INVARIANT(legalLifeTransition(lifeState_, s),
                       "illegal lifecycle transition ",
                       lifeStateName(lifeState_), " -> ",
                       lifeStateName(s), " for task '", name_, "'");
        lifeState_ = s;
    }

    /** True while the task is scheduled and making progress. */
    bool runnable() const { return lifeState_ == LifeState::Running; }

    /** Unique task id, assigned by the node at placement time. */
    int id() const { return id_; }
    void setId(int id) { id_ = id; }

    /** Socket this task's threads run on. */
    sim::SocketId homeSocket() const { return homeSocket_; }
    void setHomeSocket(sim::SocketId s) { homeSocket_ = s; }

    /**
     * Explicit data placement. Empty means "allocate local": demand is
     * split across the subdomains in proportion to the group's cores.
     */
    const std::vector<DataShare> &dataPlacement() const
    {
        return dataPlacement_;
    }
    void setDataPlacement(std::vector<DataShare> placement);

    /** Number of software threads the task wants to run. */
    virtual int threadsWanted() const = 0;

    /** Pass 1: bandwidth demand for this tick, GiB/s. */
    virtual sim::GiBps bwDemand(const ExecEnv &env) = 0;

    /** Pass 2: advance task state through dt. */
    virtual void advance(sim::Time dt, const ExecEnv &env) = 0;

    /** Cumulative completed work (task-specific units). */
    virtual double completedWork() const = 0;

    /** Host-phase LLC characteristics for apportionment. */
    virtual HostPhaseParams llcProfile() const = 0;

    /** Smoothed achieved relative speed (demand feedback basis). */
    double demandBasis() const { return demandBasis_; }

  protected:
    /** Fold an achieved speed into the demand basis. */
    void updateDemandBasis(double achieved_speed);

  private:
    std::string name_;
    sim::GroupId group_;
    int id_ = sim::invalidId;
    sim::SocketId homeSocket_ = 0;
    std::vector<DataShare> dataPlacement_;
    double demandBasis_ = 1.0;
    LifeState lifeState_ = LifeState::Running;
};

} // namespace wl
} // namespace kelp

#endif // KELP_WORKLOAD_TASK_HH
