/**
 * @file
 * Closed-loop accelerated training task (CNN1, CNN2, CNN3).
 *
 * A training step is a StepGraph: sequential stages of concurrent
 * segments. The in-feed pattern (CNN1/CNN2 on Cloud TPU) is a stage
 * where a Host segment overlaps an Accel segment -- the step completes
 * at the pace of the slower of the two, which is how host interference
 * surfaces as step-time inflation. The parameter-server pattern (CNN3
 * on GPU) is sequential accelerator compute followed by a
 * memory-bound host aggregation.
 *
 * Performance metric: completed training steps; experiments normalize
 * steps/s against a standalone run.
 */

#ifndef KELP_WORKLOAD_ML_TRAIN_TASK_HH
#define KELP_WORKLOAD_ML_TRAIN_TASK_HH

#include <array>

#include "accel/accelerator.hh"
#include "workload/task.hh"

namespace kelp {
namespace wl {

/** Closed-loop training workload bound to one accelerator. */
class MlTrainTask : public Task
{
  public:
    /**
     * @param name Display name.
     * @param group Owning task group.
     * @param step The training-step graph.
     * @param accel Accelerator the Accel segments run on (may be
     *        nullptr in unit tests; only utilization accounting is
     *        lost).
     */
    MlTrainTask(std::string name, sim::GroupId group, StepGraph step,
                accel::Accelerator *accel);

    int threadsWanted() const override;

    sim::GiBps bwDemand(const ExecEnv &env) override;

    void advance(sim::Time dt, const ExecEnv &env) override;

    /** Completed training steps (fractional: includes partial). */
    double completedWork() const override;

    HostPhaseParams llcProfile() const override;

    /** Whole steps completed. */
    uint64_t steps() const { return steps_; }

    const StepGraph &step() const { return step_; }

    bool fastPrepare(const ExecEnv &env, sim::Time dt) override;
    bool fastTickReady(sim::Time dt) const override;
    bool fastTickRun(sim::Time dt) override;
    uint64_t fastHorizon(sim::Time dt) const override;
    void fastTickRunMany(sim::Time dt, uint64_t n) override;

  private:
    /** Remaining standalone-time per segment of the current stage. */
    void enterStage(size_t idx);

    /** Host segment active in the current stage, or nullptr. */
    const StepSegment *activeHostSegment() const;

    StepGraph step_;
    accel::Accelerator *accel_;

    size_t stageIdx_ = 0;
    std::vector<sim::Time> remaining_;
    uint64_t steps_ = 0;
    double stageProgressWork_ = 0.0;

    /** Quiescent-tick kernel cache: per-segment speeds of the
     * current stage and the demand speed of its last host segment
     * (-1 when the stage has no host segment). */
    std::array<double, 8> fastSpeed_{};
    double fastLastHostSpeed_ = -1.0;
};

} // namespace wl
} // namespace kelp

#endif // KELP_WORKLOAD_ML_TRAIN_TASK_HH
