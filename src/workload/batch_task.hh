/**
 * @file
 * Batch CPU tasks: continuously-running low-priority work.
 *
 * Covers the paper's colocated CPU workloads (Stream, Stitch, CPUML)
 * and the synthetic aggressors (LLC, DRAM at three aggressiveness
 * levels, Remote DRAM). A batch task executes one host phase forever;
 * its throughput metric is standalone-equivalent thread-seconds of
 * work per second, so a task running T threads at full speed scores T.
 */

#ifndef KELP_WORKLOAD_BATCH_TASK_HH
#define KELP_WORKLOAD_BATCH_TASK_HH

#include "workload/task.hh"

namespace kelp {
namespace wl {

/** A continuously-running CPU workload. */
class BatchTask : public Task
{
  public:
    /**
     * @param name Display name.
     * @param group Owning task group.
     * @param threads Software threads the task runs.
     * @param phase Host-phase response parameters.
     */
    BatchTask(std::string name, sim::GroupId group, int threads,
              const HostPhaseParams &phase);

    int threadsWanted() const override { return threads_; }

    sim::GiBps bwDemand(const ExecEnv &env) override;

    void advance(sim::Time dt, const ExecEnv &env) override;

    /** Completed work in standalone thread-seconds. */
    double completedWork() const override { return work_; }

    HostPhaseParams llcProfile() const override { return phase_; }

    /** Throughput over an interval: work delta / time delta. */
    double throughputSince(double &work_cursor, sim::Time dt) const;

    /** Change the thread count (load sweeps). */
    void setThreads(int threads);

    const HostPhaseParams &phase() const { return phase_; }

    bool fastPrepare(const ExecEnv &env, sim::Time dt) override;
    bool fastTickReady(sim::Time dt) const override;
    bool fastTickRun(sim::Time dt) override;
    uint64_t fastHorizon(sim::Time dt) const override;
    void fastTickRunMany(sim::Time dt, uint64_t n) override;

  private:
    int threads_;
    HostPhaseParams phase_;
    double work_ = 0.0;

    /** Quiescent-tick kernel cache: speed*running product and the
     * demand speed advance() would compute from the prepared env. */
    double fastRate_ = 0.0;
    double fastDemandSpeed_ = 0.0;
};

} // namespace wl
} // namespace kelp

#endif // KELP_WORKLOAD_BATCH_TASK_HH
