#include "workload/batch_task.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace wl {

BatchTask::BatchTask(std::string name, sim::GroupId group, int threads,
                     const HostPhaseParams &phase)
    : Task(std::move(name), group), threads_(threads), phase_(phase)
{
    KELP_ASSERT(threads >= 1, "batch task needs at least one thread");
}

sim::GiBps
BatchTask::bwDemand(const ExecEnv &env)
{
    return hostDemand(phase_, env.effCores, demandBasis(),
                      env.missRatio, env.pfFraction);
}

void
BatchTask::advance(sim::Time dt, const ExecEnv &env)
{
    HostSpeeds speeds = hostSpeeds(phase_, env, demandBasis());
    // Work accrues per effective core actually running the phase;
    // effCores already folds in fair-share and SMT capacity.
    double running = std::min(static_cast<double>(threads_),
                              env.effCores);
    work_ += speeds.speed * running * dt;
    updateDemandBasis(speeds.demandSpeed);
}

double
BatchTask::throughputSince(double &work_cursor, sim::Time dt) const
{
    double delta = work_ - work_cursor;
    work_cursor = work_;
    return dt > 0.0 ? delta / dt : 0.0;
}

void
BatchTask::setThreads(int threads)
{
    KELP_ASSERT(threads >= 1, "batch task needs at least one thread");
    threads_ = threads;
}

} // namespace wl
} // namespace kelp
