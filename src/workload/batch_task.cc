#include "workload/batch_task.hh"

#include <algorithm>

#include "sim/log.hh"

namespace kelp {
namespace wl {

BatchTask::BatchTask(std::string name, sim::GroupId group, int threads,
                     const HostPhaseParams &phase)
    : Task(std::move(name), group), threads_(threads), phase_(phase)
{
    KELP_ASSERT(threads >= 1, "batch task needs at least one thread");
}

sim::GiBps
BatchTask::bwDemand(const ExecEnv &env)
{
    return hostDemand(phase_, env.effCores, demandBasis(),
                      env.missRatio, env.pfFraction);
}

void
BatchTask::advance(sim::Time dt, const ExecEnv &env)
{
    HostSpeeds speeds = hostSpeeds(phase_, env, demandBasis());
    // Work accrues per effective core actually running the phase;
    // effCores already folds in fair-share and SMT capacity.
    double running = std::min(static_cast<double>(threads_),
                              env.effCores);
    work_ += speeds.speed * running * dt;
    updateDemandBasis(speeds.demandSpeed);
}

double
BatchTask::throughputSince(double &work_cursor, sim::Time dt) const
{
    double delta = work_ - work_cursor;
    work_cursor = work_;
    return dt > 0.0 ? delta / dt : 0.0;
}

void
BatchTask::setThreads(int threads)
{
    KELP_ASSERT(threads >= 1, "batch task needs at least one thread");
    threads_ = threads;
    noteChange();
}

bool
BatchTask::fastPrepare(const ExecEnv &env, sim::Time dt)
{
    (void)dt;
    HostSpeeds speeds = hostSpeeds(phase_, env, demandBasis());
    // The demand basis must be at its fixpoint under this
    // environment, otherwise each tick would change it (and the
    // demand derived from it) and the node would not stay quiescent.
    if (!demandBasisSettled(speeds.demandSpeed))
        return false;
    double running = std::min(static_cast<double>(threads_),
                              env.effCores);
    fastRate_ = speeds.speed * running;
    fastDemandSpeed_ = speeds.demandSpeed;
    return true;
}

bool
BatchTask::fastTickReady(sim::Time dt) const
{
    // A batch phase runs forever: no internal boundary to cross.
    (void)dt;
    return true;
}

bool
BatchTask::fastTickRun(sim::Time dt)
{
    // Same op chain as advance(): (speed * running) * dt, then the
    // basis update (a bitwise no-op at the fixpoint checked above).
    work_ += fastRate_ * dt;
    updateDemandBasis(fastDemandSpeed_);
    return true;
}

uint64_t
BatchTask::fastHorizon(sim::Time dt) const
{
    // No internal boundary and fastTickRun never exits: any chunk
    // the node proposes is fine.
    (void)dt;
    return UINT64_MAX;
}

void
BatchTask::fastTickRunMany(sim::Time dt, uint64_t n)
{
    // fastRate_ * dt produces the same bits every tick, so hoisting
    // the multiply keeps the per-tick add chain identical; the basis
    // update is a bitwise no-op at the fixpoint fastPrepare checked,
    // so skipping it changes nothing.
    double add = fastRate_ * dt;
    for (uint64_t i = 0; i < n; ++i)
        work_ += add;
}

} // namespace wl
} // namespace kelp
