#include "workload/ml_train_task.hh"

#include <algorithm>
#include <array>

#include "sim/log.hh"

namespace kelp {
namespace wl {

MlTrainTask::MlTrainTask(std::string name, sim::GroupId group,
                         StepGraph step, accel::Accelerator *accel)
    : Task(std::move(name), group), step_(std::move(step)),
      accel_(accel)
{
    KELP_ASSERT(!step_.stages.empty(), "training step has no stages");
    for (const auto &stage : step_.stages)
        KELP_ASSERT(!stage.segments.empty(), "empty step stage");
    enterStage(0);
}

void
MlTrainTask::enterStage(size_t idx)
{
    stageIdx_ = idx;
    const auto &segs = step_.stages[idx].segments;
    remaining_.assign(segs.size(), 0.0);
    for (size_t i = 0; i < segs.size(); ++i)
        remaining_[i] = segs[i].duration;
}

const StepSegment *
MlTrainTask::activeHostSegment() const
{
    const auto &segs = step_.stages[stageIdx_].segments;
    for (size_t i = 0; i < segs.size(); ++i)
        if (segs[i].kind == SegmentKind::Host && remaining_[i] > 0.0)
            return &segs[i];
    return nullptr;
}

int
MlTrainTask::threadsWanted() const
{
    int threads = 1;
    for (const auto &stage : step_.stages)
        for (const auto &seg : stage.segments)
            if (seg.kind == SegmentKind::Host)
                threads = std::max(threads, seg.host.parallelism);
    return threads;
}

HostPhaseParams
MlTrainTask::llcProfile() const
{
    // The dominant (longest) host segment defines cache behaviour.
    const StepSegment *best = nullptr;
    for (const auto &stage : step_.stages)
        for (const auto &seg : stage.segments)
            if (seg.kind == SegmentKind::Host &&
                (!best || seg.duration > best->duration)) {
                best = &seg;
            }
    return best ? best->host : HostPhaseParams{};
}

sim::GiBps
MlTrainTask::bwDemand(const ExecEnv &env)
{
    const StepSegment *host = activeHostSegment();
    if (!host)
        return 0.0;
    double cores = std::min(env.effCores,
                            static_cast<double>(host->host.parallelism));
    return hostDemand(host->host, cores, demandBasis(), env.missRatio,
                      env.pfFraction);
}

void
MlTrainTask::advance(sim::Time dt, const ExecEnv &env)
{
    sim::Time accel_busy = 0.0;
    sim::Time link_busy = 0.0;
    sim::Time budget = dt;
    double last_host_speed = -1.0;

    while (budget > 1e-12) {
        const auto &segs = step_.stages[stageIdx_].segments;

        // Per-segment progress speeds for this slice.
        sim::Time to_finish = 0.0;
        bool any_left = false;
        std::array<double, 8> speed;
        KELP_ASSERT(segs.size() <= speed.size(),
                    "too many segments in one stage");
        for (size_t i = 0; i < segs.size(); ++i) {
            double s = 1.0;
            if (segs[i].kind == SegmentKind::Host) {
                HostSpeeds sp =
                    hostSpeeds(segs[i].host, env, demandBasis());
                s = sp.speed;
                last_host_speed = sp.demandSpeed;
            }
            speed[i] = s;
            if (remaining_[i] > 0.0) {
                any_left = true;
                to_finish = std::max(to_finish, remaining_[i] / s);
            }
        }
        KELP_ASSERT(any_left, "stage entered with no remaining work");

        sim::Time slice = std::min(budget, to_finish);
        for (size_t i = 0; i < segs.size(); ++i) {
            if (remaining_[i] <= 0.0)
                continue;
            sim::Time active = std::min(slice, remaining_[i] / speed[i]);
            remaining_[i] =
                std::max(0.0, remaining_[i] - active * speed[i]);
            if (segs[i].kind == SegmentKind::Accel)
                accel_busy += active;
            else if (segs[i].kind == SegmentKind::Pcie)
                link_busy += active;
        }
        budget -= slice;

        if (slice >= to_finish - 1e-15) {
            // Stage complete; move on (wrapping completes a step).
            size_t next = stageIdx_ + 1;
            if (next >= step_.stages.size()) {
                next = 0;
                ++steps_;
            }
            enterStage(next);
        }
    }

    if (accel_) {
        accel_->recordEngineBusy(accel_busy / dt, dt);
        accel_->recordLinkBusy(link_busy / dt, dt);
    }
    if (last_host_speed >= 0.0)
        updateDemandBasis(last_host_speed);
}

bool
MlTrainTask::fastPrepare(const ExecEnv &env, sim::Time dt)
{
    (void)dt;
    const auto &segs = step_.stages[stageIdx_].segments;
    KELP_ASSERT(segs.size() <= fastSpeed_.size(),
                "too many segments in one stage");
    // Mirror the speed loop of advance(): speeds are pure in (phase,
    // env, basis), and last_host_speed is taken from every host
    // segment in order, finished or not.
    fastLastHostSpeed_ = -1.0;
    for (size_t i = 0; i < segs.size(); ++i) {
        double s = 1.0;
        if (segs[i].kind == SegmentKind::Host) {
            HostSpeeds sp = hostSpeeds(segs[i].host, env, demandBasis());
            s = sp.speed;
            fastLastHostSpeed_ = sp.demandSpeed;
        }
        fastSpeed_[i] = s;
    }
    if (fastLastHostSpeed_ >= 0.0 &&
        !demandBasisSettled(fastLastHostSpeed_)) {
        // Per-tick basis drift would change speeds and demand.
        return false;
    }
    return true;
}

bool
MlTrainTask::fastTickReady(sim::Time dt) const
{
    // One fast tick must stay strictly inside the current stage: the
    // slice taken by advance() would then be exactly dt and no
    // stage-completion branch fires.
    const auto &segs = step_.stages[stageIdx_].segments;
    sim::Time to_finish = 0.0;
    for (size_t i = 0; i < segs.size(); ++i)
        if (remaining_[i] > 0.0)
            to_finish = std::max(to_finish,
                                 remaining_[i] / fastSpeed_[i]);
    return dt < to_finish - 1e-15;
}

bool
MlTrainTask::fastTickRun(sim::Time dt)
{
    // Replay of advance()'s single-slice body with slice == dt,
    // using the cached speeds.
    sim::Time accel_busy = 0.0;
    sim::Time link_busy = 0.0;
    const auto &segs = step_.stages[stageIdx_].segments;
    bool host_done = false;
    for (size_t i = 0; i < segs.size(); ++i) {
        if (remaining_[i] <= 0.0)
            continue;
        sim::Time active = std::min(dt, remaining_[i] / fastSpeed_[i]);
        remaining_[i] =
            std::max(0.0, remaining_[i] - active * fastSpeed_[i]);
        if (segs[i].kind == SegmentKind::Accel)
            accel_busy += active;
        else if (segs[i].kind == SegmentKind::Pcie)
            link_busy += active;
        // kelp: allow(float-eq): the max(0.0, ...) above snaps a
        // drained segment to exactly 0.0
        if (segs[i].kind == SegmentKind::Host && remaining_[i] == 0.0)
            host_done = true;
    }
    if (accel_) {
        accel_->recordEngineBusy(accel_busy / dt, dt);
        accel_->recordLinkBusy(link_busy / dt, dt);
    }
    if (fastLastHostSpeed_ >= 0.0)
        updateDemandBasis(fastLastHostSpeed_);
    // A host segment draining to zero changes next tick's demand
    // (activeHostSegment() moves on), so leave the fast path.
    return !host_done;
}

uint64_t
MlTrainTask::fastHorizon(sim::Time dt) const
{
    // Ticks until ANY active segment could drain (a host segment
    // draining exits the fast path; the slowest segment draining
    // ends the stage), with a margin of a few ticks for the drift
    // between per-tick remaining_ accumulation and this closed-form
    // division. Underestimating only drops the node back to per-tick
    // stepping for the boundary ticks.
    const auto &segs = step_.stages[stageIdx_].segments;
    uint64_t h = UINT64_MAX;
    for (size_t i = 0; i < segs.size(); ++i) {
        if (remaining_[i] <= 0.0)
            continue;
        double ticks = remaining_[i] / (fastSpeed_[i] * dt);
        if (!(ticks > 5.0))
            return 0;
        h = std::min(
            h, static_cast<uint64_t>(std::min(ticks - 4.0, 1e15)));
    }
    return h == UINT64_MAX ? 0 : h;
}

void
MlTrainTask::fastTickRunMany(sim::Time dt, uint64_t n)
{
    // n fastTickRun(dt) calls with every active segment strictly
    // inside the stage: active == dt each tick, active * speed
    // produces the same bits every tick (hoisted), and the busy
    // fractions repeat. The basis update is a bitwise no-op at the
    // fixpoint fastPrepare checked, so skipping it changes nothing.
    const auto &segs = step_.stages[stageIdx_].segments;
    sim::Time accel_busy = 0.0;
    sim::Time link_busy = 0.0;
    for (size_t i = 0; i < segs.size(); ++i) {
        if (remaining_[i] <= 0.0)
            continue;
        double step = dt * fastSpeed_[i];
        double rem = remaining_[i];
        for (uint64_t k = 0; k < n; ++k)
            rem = std::max(0.0, rem - step);
        remaining_[i] = rem;
        if (segs[i].kind == SegmentKind::Accel)
            accel_busy += dt;
        else if (segs[i].kind == SegmentKind::Pcie)
            link_busy += dt;
    }
    if (accel_)
        accel_->recordBusyRepeat(accel_busy / dt, link_busy / dt, dt,
                                 n);
}

double
MlTrainTask::completedWork() const
{
    // Whole steps plus the standalone-time fraction of the current
    // one (critical path through the remaining stages).
    sim::Time left = 0.0;
    for (size_t i = 0; i < remaining_.size(); ++i)
        left = std::max(left, remaining_[i]);
    for (size_t s = stageIdx_ + 1; s < step_.stages.size(); ++s) {
        sim::Time longest = 0.0;
        for (const auto &seg : step_.stages[s].segments)
            longest = std::max(longest, seg.duration);
        left += longest;
    }
    sim::Time total = step_.standaloneDuration();
    double frac = total > 0.0 ? 1.0 - left / total : 0.0;
    return static_cast<double>(steps_) + std::clamp(frac, 0.0, 1.0);
}

} // namespace wl
} // namespace kelp
