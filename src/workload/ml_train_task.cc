#include "workload/ml_train_task.hh"

#include <algorithm>
#include <array>

#include "sim/log.hh"

namespace kelp {
namespace wl {

MlTrainTask::MlTrainTask(std::string name, sim::GroupId group,
                         StepGraph step, accel::Accelerator *accel)
    : Task(std::move(name), group), step_(std::move(step)),
      accel_(accel)
{
    KELP_ASSERT(!step_.stages.empty(), "training step has no stages");
    for (const auto &stage : step_.stages)
        KELP_ASSERT(!stage.segments.empty(), "empty step stage");
    enterStage(0);
}

void
MlTrainTask::enterStage(size_t idx)
{
    stageIdx_ = idx;
    const auto &segs = step_.stages[idx].segments;
    remaining_.assign(segs.size(), 0.0);
    for (size_t i = 0; i < segs.size(); ++i)
        remaining_[i] = segs[i].duration;
}

const StepSegment *
MlTrainTask::activeHostSegment() const
{
    const auto &segs = step_.stages[stageIdx_].segments;
    for (size_t i = 0; i < segs.size(); ++i)
        if (segs[i].kind == SegmentKind::Host && remaining_[i] > 0.0)
            return &segs[i];
    return nullptr;
}

int
MlTrainTask::threadsWanted() const
{
    int threads = 1;
    for (const auto &stage : step_.stages)
        for (const auto &seg : stage.segments)
            if (seg.kind == SegmentKind::Host)
                threads = std::max(threads, seg.host.parallelism);
    return threads;
}

HostPhaseParams
MlTrainTask::llcProfile() const
{
    // The dominant (longest) host segment defines cache behaviour.
    const StepSegment *best = nullptr;
    for (const auto &stage : step_.stages)
        for (const auto &seg : stage.segments)
            if (seg.kind == SegmentKind::Host &&
                (!best || seg.duration > best->duration)) {
                best = &seg;
            }
    return best ? best->host : HostPhaseParams{};
}

sim::GiBps
MlTrainTask::bwDemand(const ExecEnv &env)
{
    const StepSegment *host = activeHostSegment();
    if (!host)
        return 0.0;
    double cores = std::min(env.effCores,
                            static_cast<double>(host->host.parallelism));
    return hostDemand(host->host, cores, demandBasis(), env.missRatio,
                      env.pfFraction);
}

void
MlTrainTask::advance(sim::Time dt, const ExecEnv &env)
{
    sim::Time accel_busy = 0.0;
    sim::Time link_busy = 0.0;
    sim::Time budget = dt;
    double last_host_speed = -1.0;

    while (budget > 1e-12) {
        const auto &segs = step_.stages[stageIdx_].segments;

        // Per-segment progress speeds for this slice.
        sim::Time to_finish = 0.0;
        bool any_left = false;
        std::array<double, 8> speed;
        KELP_ASSERT(segs.size() <= speed.size(),
                    "too many segments in one stage");
        for (size_t i = 0; i < segs.size(); ++i) {
            double s = 1.0;
            if (segs[i].kind == SegmentKind::Host) {
                HostSpeeds sp =
                    hostSpeeds(segs[i].host, env, demandBasis());
                s = sp.speed;
                last_host_speed = sp.demandSpeed;
            }
            speed[i] = s;
            if (remaining_[i] > 0.0) {
                any_left = true;
                to_finish = std::max(to_finish, remaining_[i] / s);
            }
        }
        KELP_ASSERT(any_left, "stage entered with no remaining work");

        sim::Time slice = std::min(budget, to_finish);
        for (size_t i = 0; i < segs.size(); ++i) {
            if (remaining_[i] <= 0.0)
                continue;
            sim::Time active = std::min(slice, remaining_[i] / speed[i]);
            remaining_[i] =
                std::max(0.0, remaining_[i] - active * speed[i]);
            if (segs[i].kind == SegmentKind::Accel)
                accel_busy += active;
            else if (segs[i].kind == SegmentKind::Pcie)
                link_busy += active;
        }
        budget -= slice;

        if (slice >= to_finish - 1e-15) {
            // Stage complete; move on (wrapping completes a step).
            size_t next = stageIdx_ + 1;
            if (next >= step_.stages.size()) {
                next = 0;
                ++steps_;
            }
            enterStage(next);
        }
    }

    if (accel_) {
        accel_->recordEngineBusy(accel_busy / dt, dt);
        accel_->recordLinkBusy(link_busy / dt, dt);
    }
    if (last_host_speed >= 0.0)
        updateDemandBasis(last_host_speed);
}

double
MlTrainTask::completedWork() const
{
    // Whole steps plus the standalone-time fraction of the current
    // one (critical path through the remaining stages).
    sim::Time left = 0.0;
    for (size_t i = 0; i < remaining_.size(); ++i)
        left = std::max(left, remaining_[i]);
    for (size_t s = stageIdx_ + 1; s < step_.stages.size(); ++s) {
        sim::Time longest = 0.0;
        for (const auto &seg : step_.stages[s].segments)
            longest = std::max(longest, seg.duration);
        left += longest;
    }
    sim::Time total = step_.standaloneDuration();
    double frac = total > 0.0 ? 1.0 - left / total : 0.0;
    return static_cast<double>(steps_) + std::clamp(frac, 0.0, 1.0);
}

} // namespace wl
} // namespace kelp
