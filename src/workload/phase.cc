#include "workload/phase.hh"

#include <algorithm>

namespace kelp {
namespace wl {

sim::Time
StepGraph::standaloneDuration() const
{
    sim::Time total = 0.0;
    for (const auto &stage : stages) {
        sim::Time longest = 0.0;
        for (const auto &seg : stage.segments)
            longest = std::max(longest, seg.duration);
        total += longest;
    }
    return total;
}

sim::Time
StepGraph::hostTime() const
{
    sim::Time total = 0.0;
    for (const auto &stage : stages)
        for (const auto &seg : stage.segments)
            if (seg.kind == SegmentKind::Host)
                total += seg.duration;
    return total;
}

StepSegment
hostSegment(sim::Time duration, const HostPhaseParams &p)
{
    StepSegment s;
    s.kind = SegmentKind::Host;
    s.duration = duration;
    s.host = p;
    return s;
}

StepSegment
accelSegment(sim::Time duration)
{
    StepSegment s;
    s.kind = SegmentKind::Accel;
    s.duration = duration;
    return s;
}

StepSegment
pcieSegment(sim::Time duration)
{
    StepSegment s;
    s.kind = SegmentKind::Pcie;
    s.duration = duration;
    return s;
}

} // namespace wl
} // namespace kelp
