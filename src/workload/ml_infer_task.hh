/**
 * @file
 * Open-loop accelerated inference server (RNN1 on the TPU platform).
 *
 * Requests arrive at a target rate (Poisson, open loop) and are
 * admitted into a pipeline of bounded depth; excess requests wait in
 * a FIFO queue. Each request executes a fixed number of iterations;
 * an iteration is a sequence of single-segment stages (beam-search on
 * the host, a PCIe hop, accelerator compute -- the structure shown in
 * the paper's Figure 3 timeline).
 *
 * Stations:
 *  - Host: concurrent; in-flight host segments share the task's cores
 *    fairly, each capped at its phase parallelism.
 *  - Accel and Pcie: FIFO, one request in service at a time.
 *
 * Service-level metrics: achieved QPS (completions / time) and the
 * request-latency distribution (95th percentile tail). A serial mode
 * reproduces Figure 3's one-request-at-a-time trace and can emit the
 * phase timeline through a trace sink.
 */

#ifndef KELP_WORKLOAD_ML_INFER_TASK_HH
#define KELP_WORKLOAD_ML_INFER_TASK_HH

#include <deque>
#include <functional>

#include "accel/accelerator.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "workload/task.hh"

namespace kelp {
namespace wl {

/** Inference-server parameters. */
struct InferConfig
{
    /** One iteration: sequential single-segment stages. */
    StepGraph iteration;

    /** Iterations per request. */
    int itersPerRequest = 5;

    /** Open-loop arrival rate, queries per second (open loop only). */
    double targetQps = 300.0;

    /** Maximum requests in service concurrently. */
    int pipelineDepth = 4;

    /**
     * Closed-loop mode: the load generator keeps exactly
     * pipelineDepth requests in flight ("generated in a parallel and
     * pipelined fashion", Section V-A), so QPS and latency move
     * inversely. false = open-loop Poisson arrivals at targetQps.
     */
    bool closedLoop = true;

    /** Closed-loop with one request at a time (Figure 3 trace). */
    bool serial = false;

    /**
     * Externally-driven mode: the task generates no arrivals of its
     * own (neither closed-loop top-up nor open-loop Poisson); a
     * serving layer feeds it via submit(). Incompatible with serial.
     */
    bool externalArrivals = false;
};

/** Phase-execution record for timeline traces. */
struct TraceEvent
{
    SegmentKind kind;
    sim::Time start;
    sim::Time end;
    int iteration;
};

/** Open-loop inference server task. */
class MlInferTask : public Task
{
  public:
    MlInferTask(std::string name, sim::GroupId group, InferConfig cfg,
                accel::Accelerator *accel, uint64_t seed = 1);

    int threadsWanted() const override;

    sim::GiBps bwDemand(const ExecEnv &env) override;

    void advance(sim::Time dt, const ExecEnv &env) override;

    /** Completed requests. */
    double completedWork() const override
    {
        return static_cast<double>(completed_);
    }

    HostPhaseParams llcProfile() const override;

    /** Request-latency distribution (seconds). */
    const sim::LatencyHistogram &latency() const { return latency_; }

    /** Forget recorded latencies (end-of-warmup reset). */
    void resetLatency() { latency_.reset(); }

    /** Requests completed so far. */
    uint64_t completed() const { return completed_; }

    /** Requests currently queued (not yet admitted). */
    size_t queued() const { return queue_.size(); }

    /** Requests currently in service (admitted, not yet retired). */
    size_t inService() const { return inFlight_.size(); }

    /** Enqueue one externally-generated request carrying its true
     * arrival time (externalArrivals mode; the latency sample spans
     * queueing in the serving layer as well). */
    void submit(sim::Time arrival);

    /** Install a per-completion sink (request arrival, completion
     * time); used by the serving layer for drop accounting. */
    void
    setCompletionSink(std::function<void(sim::Time, sim::Time)> sink)
    {
        completionSink_ = std::move(sink);
    }

    /** Install a timeline sink (serial-trace experiments). */
    void setTraceSink(std::function<void(const TraceEvent &)> sink)
    {
        traceSink_ = std::move(sink);
    }

    const InferConfig &config() const { return cfg_; }

    bool fastPrepare(const ExecEnv &env, sim::Time dt) override;
    bool fastTickReady(sim::Time dt) const override;
    bool fastTickRun(sim::Time dt) override;
    uint64_t fastHorizon(sim::Time dt) const override;
    void fastTickRunMany(sim::Time dt, uint64_t n) override;

  private:
    struct Request
    {
        sim::Time arrival;
        int iter = 0;
        size_t stage = 0;
        sim::Time remaining = 0.0;
        sim::Time segmentStart = 0.0;
    };

    /** Segment spec for a request's current stage. */
    const StepSegment &segmentOf(const Request &r) const;

    /** Move a request to its next segment/iteration; true if done. */
    bool advanceStage(Request &r);

    void admitFromQueue();

    InferConfig cfg_;
    accel::Accelerator *accel_;
    sim::Rng rng_;

    sim::Time now_ = 0.0;
    sim::Time nextArrival_ = 0.0;
    std::deque<sim::Time> queue_;
    std::vector<Request> inFlight_;
    uint64_t completed_ = 0;
    sim::LatencyHistogram latency_;
    std::function<void(const TraceEvent &)> traceSink_;
    std::function<void(sim::Time, sim::Time)> completionSink_;
};

} // namespace wl
} // namespace kelp

#endif // KELP_WORKLOAD_ML_INFER_TASK_HH
