#include "accel/accelerator.hh"

#include "sim/log.hh"

namespace kelp {
namespace accel {

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::TpuV1:
        return "TPU";
      case Kind::CloudTpu:
        return "Cloud TPU";
      case Kind::Gpu:
        return "GPU";
    }
    return "unknown";
}

Accelerator::Accelerator(const AcceleratorConfig &cfg)
    : cfg_(cfg)
{
    KELP_ASSERT(cfg.pcieBw > 0.0, "PCIe bandwidth must be positive");
    KELP_ASSERT(cfg.deviceMemBw > 0.0,
                "device memory bandwidth must be positive");
}

sim::Time
Accelerator::transferTime(double gib) const
{
    KELP_ASSERT(gib >= 0.0, "negative transfer size");
    return gib / cfg_.pcieBw;
}

void
Accelerator::recordEngineBusy(double fraction, sim::Time dt)
{
    engineUtil_.accumulate(fraction, dt);
}

void
Accelerator::recordLinkBusy(double fraction, sim::Time dt)
{
    linkUtil_.accumulate(fraction, dt);
}

void
Accelerator::recordBusyRepeat(double engine_fraction,
                              double link_fraction, sim::Time dt,
                              uint64_t n)
{
    engineUtil_.accumulateRepeat(engine_fraction, dt, n);
    linkUtil_.accumulateRepeat(link_fraction, dt, n);
}

} // namespace accel
} // namespace kelp
