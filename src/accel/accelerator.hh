/**
 * @file
 * Accelerator device model.
 *
 * The paper's measurements show the accelerator-side execution (and
 * its device memory) is *insensitive* to host interference -- only the
 * CPU-assist phases degrade (Figure 3). Accordingly the device is a
 * fixed-rate execution engine plus a PCIe link: accelerator-compute
 * phases take their standalone duration; PCIe transfer phases take
 * transfer-size / link-bandwidth. The engine is exclusively owned by
 * one application (Section II-A: no time multiplexing), so there is
 * no cross-task arbitration -- just utilization accounting.
 */

#ifndef KELP_ACCEL_ACCELERATOR_HH
#define KELP_ACCEL_ACCELERATOR_HH

#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace kelp {
namespace accel {

/** The three accelerator platforms studied in the paper (Table I). */
enum class Kind { TpuV1, CloudTpu, Gpu };

/** Human-readable name of an accelerator kind. */
const char *kindName(Kind kind);

/** Static description of an accelerator device. */
struct AcceleratorConfig
{
    Kind kind = Kind::TpuV1;

    /** Peak compute throughput, TFLOPS (descriptive; phases carry
     * their own durations). */
    double peakTflops = 92.0;

    /** Device memory capacity, GiB. */
    double deviceMemGb = 8.0;

    /** Device memory bandwidth, GiB/s (the paper's roofline bound). */
    sim::GiBps deviceMemBw = 34.0;

    /** Host link (PCIe) bandwidth, GiB/s. */
    sim::GiBps pcieBw = 12.0;

    /** Socket the device is attached to. */
    sim::SocketId attachedSocket = 0;
};

/**
 * One accelerator device: execution-engine and link occupancy
 * tracking for a single owning application.
 */
class Accelerator
{
  public:
    explicit Accelerator(const AcceleratorConfig &cfg);

    const AcceleratorConfig &config() const { return cfg_; }
    Kind kind() const { return cfg_.kind; }
    sim::SocketId attachedSocket() const { return cfg_.attachedSocket; }

    /** Time to move the given payload across the host link. */
    sim::Time transferTime(double gib) const;

    /** Record engine busy fraction over a tick (for utilization). */
    void recordEngineBusy(double fraction, sim::Time dt);

    /** Record link busy fraction over a tick. */
    void recordLinkBusy(double fraction, sim::Time dt);

    /** Record the same busy fractions over n consecutive ticks;
     * identical to n single-tick records. */
    void recordBusyRepeat(double engine_fraction, double link_fraction,
                          sim::Time dt, uint64_t n);

    /** Time-averaged engine utilization accumulator. */
    const sim::IntervalAccumulator &engineUtil() const
    {
        return engineUtil_;
    }

    /** Time-averaged link utilization accumulator. */
    const sim::IntervalAccumulator &linkUtil() const
    {
        return linkUtil_;
    }

  private:
    AcceleratorConfig cfg_;
    sim::IntervalAccumulator engineUtil_;
    sim::IntervalAccumulator linkUtil_;
};

} // namespace accel
} // namespace kelp

#endif // KELP_ACCEL_ACCELERATOR_HH
