/**
 * @file
 * Trial execution and the oracle set: what it means for one fuzzed
 * scenario to "fail".
 *
 * A trial executes a ScenarioSpec (deterministically: everything is
 * seeded through the spec) and checks the run against oracles that
 * encode the repository's cross-cutting robustness guarantees rather
 * than any single expected output:
 *
 *  - contract-violation  a KELP_EXPECTS/ENSURES/INVARIANT fired
 *                        (counted per worker thread, so parallel
 *                        trials attribute violations exactly);
 *  - watchdog-stuck      the fail-safe watchdog tripped and never
 *                        re-armed despite enough remaining runway for
 *                        recovery;
 *  - ladder-thrash       the SLO ladder oscillated between rungs
 *                        faster than the hysteresis bound;
 *  - bad-metric          a NaN, infinity, or negative value in the
 *                        run's summary metrics;
 *  - request-conservation  the request-serving drop accounting does
 *                        not balance: admitted != completed + shed +
 *                        expired + in-flight, or arrivals !=
 *                        admitted + rejected (only judged when the
 *                        spec enables open-loop traffic);
 *  - restart-divergence  a kill/restart schedule changed the result
 *                        versus an unkilled twin run (only judged in
 *                        the fault-free, SLO-off regime where restart
 *                        is specified to be bit-neutral);
 *  - nondeterminism      re-running the identical spec produced a
 *                        byte-different result or decision log.
 *
 * The trial also extracts the coverage signature the fuzzer's search
 * is guided by: the set of controller decision patterns (event kinds,
 * consecutive-kind pairs, knob-delta directions) observed in the
 * DecisionLog.
 *
 * Threading: trials run inside exp::pool workers. runTrial() never
 * writes process-global state on a worker thread; callers that fan
 * out must set ContractMode::Count on the main thread first (fuzz()
 * and the CLI do).
 */

#ifndef KELP_FUZZ_ORACLE_HH
#define KELP_FUZZ_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/spec.hh"

namespace kelp {

namespace trace {
class DecisionLog;
}

namespace fuzz {

/** Oracle thresholds and toggles. */
struct OracleConfig
{
    /**
     * ladder-thrash threshold: SLO rung transitions per controller
     * sample above which the ladder is oscillating rather than
     * converging. The hysteresis counters (escalateAfter /
     * deescalateAfter >= 1) bound a well-behaved ladder well below
     * one transition every other sample.
     */
    double thrashRate = 0.25;

    /** Run the unkilled twin for the restart-divergence oracle. */
    bool twinRun = true;

    /** Re-run the spec for the nondeterminism oracle. */
    bool doubleRun = true;
};

/** One oracle firing. */
struct OracleHit
{
    /** Oracle name (stable identifier, see oracleNames()). */
    std::string name;

    /** Deterministic human-readable evidence. */
    std::string detail;
};

/** Everything a fuzz trial learned about one spec. */
struct TrialOutcome
{
    /** Canonical text of the primary run's RunResult. */
    std::string resultText;

    /** Oracles that fired, in fixed oracle order. */
    std::vector<OracleHit> hits;

    /** Sorted, de-duplicated coverage keys of the primary run. */
    std::vector<std::string> coverage;

    /** Decision-log length of the primary run. */
    uint64_t decisionEvents = 0;

    bool fired() const { return !hits.empty(); }
};

/** The fixed oracle-name universe, in reporting order. */
const std::vector<std::string> &oracleNames();

/** Canonical key=value text of a RunResult (fixed field order,
 * shortest round-trip decimals) -- the byte string the twin and
 * double-run oracles compare. */
std::string resultText(const exp::RunResult &r);

/**
 * SLO rung transitions per controller sample for a run of
 * @p horizon simulated seconds sampled every @p samplePeriod.
 * Zero when the horizon or period is degenerate.
 */
double ladderThrashRate(uint64_t transitions, double horizon,
                        double samplePeriod);

/** Coverage signature of one run's decision log: event kinds,
 * consecutive kind pairs, and knob-move direction patterns. */
std::vector<std::string> coverageKeys(const trace::DecisionLog &log);

/** Execute @p spec and judge it against every enabled oracle. */
TrialOutcome runTrial(const ScenarioSpec &spec,
                      const OracleConfig &ocfg);

/**
 * Judge @p spec against a single oracle by name: true when that
 * oracle fires. Unknown names are fatal. The shrinker and the corpus
 * replayer use this as their predicate.
 */
bool oracleFires(const ScenarioSpec &spec, const std::string &oracle,
                 const OracleConfig &ocfg);

} // namespace fuzz
} // namespace kelp

#endif // KELP_FUZZ_ORACLE_HH
