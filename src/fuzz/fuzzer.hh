/**
 * @file
 * The coverage-guided scenario fuzzer and the regression corpus
 * format.
 *
 * Determinism contract: a fuzz run is a pure function of
 * (seed, trials, batch, oracle config, extra seeds). Trials are
 * generated in batches; every spec in a batch is derived from the
 * base seed, the global trial index, and the candidate pool as it
 * stood at the batch boundary (sim::Rng::derive per trial, no shared
 * generator state), so workers can evaluate a batch in any order.
 * Outcomes are then merged on the calling thread in strict trial
 * order -- coverage growth, pool admission, finding admission, and
 * shrinking all happen there -- which makes the report byte-identical
 * for any --jobs value. The report deliberately contains no worker
 * counts, timings, or paths.
 *
 * Coverage: the set of decision-pattern keys (see coverageKeys()).
 * A trial whose run exhibits a pattern never seen before gets its
 * spec admitted to the mutation pool, steering the search toward
 * scenarios that exercise new controller behaviour -- knob-move
 * sequences and SLO-rung transitions count, not code lines.
 *
 * Corpus: a shrunk finding is archived as one text file -- directive
 * comments (`# oracle: <name>`) followed by the canonical spec -- so
 * entries are human-readable, hand-editable, and replayable as
 * regression tests (tests/test_corpus.cc).
 */

#ifndef KELP_FUZZ_FUZZER_HH
#define KELP_FUZZ_FUZZER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/oracle.hh"
#include "fuzz/spec.hh"

namespace kelp {
namespace fuzz {

/** One fuzz campaign's parameters. */
struct FuzzOptions
{
    /** Base seed; every trial derives its stream from it. */
    uint64_t seed = 1;

    /** Trials to run. */
    int trials = 64;

    /** Worker threads (resolveJobs semantics; must not change the
     * report). */
    int jobs = 1;

    /** Trials per generation batch: the pool/coverage state is
     * frozen at batch boundaries, so `batch` bounds how stale the
     * guidance may be, not the result. */
    int batch = 8;

    /** Shrink failing specs before reporting. */
    bool shrink = true;

    /** Shrink budget: candidate evaluations per finding. */
    int maxShrinkAttempts = 400;

    OracleConfig oracle;

    /** Extra pool seeds (e.g. the archived corpus) mutated alongside
     * the built-in archetypes. */
    std::vector<ScenarioSpec> extraSeeds;
};

/** One distinct failure the campaign found. */
struct Finding
{
    /** Global index of the trial that found it. */
    uint64_t trial = 0;

    /** Oracle that fired (first in oracle order when several did). */
    std::string oracle;

    /** The firing oracle's evidence on the original spec. */
    std::string detail;

    /** The spec as generated. */
    ScenarioSpec spec;

    /** The minimized spec (== spec when shrinking is off). */
    ScenarioSpec shrunk;

    /** Accepted shrink steps. */
    int shrinkSteps = 0;

    /** The shrunk spec is 1-minimal (shrink budget did not run
     * out). */
    bool minimal = false;
};

/** Campaign summary. */
struct FuzzReport
{
    uint64_t seed = 0;
    uint64_t trials = 0;

    /** Distinct findings, in discovery (trial) order. Distinct means
     * a (oracle, shrunk-spec) pair not seen before. */
    std::vector<Finding> findings;

    /** Trials whose failure duplicated an earlier finding. */
    uint64_t duplicates = 0;

    /** Coverage keys discovered over the whole campaign. */
    uint64_t coverageKeys = 0;

    /** Final mutation-pool size. */
    uint64_t poolSize = 0;

    /** Findings whose shrink budget ran out (CI gates on 0). */
    uint64_t unshrunk() const;

    /** Canonical text report: byte-identical for any jobs count. */
    std::string toText() const;
};

/** Run a fuzz campaign. Sets ContractMode::Count process-wide (the
 * oracles count violations; a Fatal-mode campaign would abort on the
 * first find). Call from the main thread only. */
FuzzReport fuzz(const FuzzOptions &opts);

/** One archived regression scenario. */
struct CorpusEntry
{
    /** Oracle this entry is judged against when replayed. */
    std::string oracle;

    /**
     * Lifecycle of the entry. An open entry (the default) is a
     * still-unfixed find: replay expects its oracle to fire, and a
     * miss means the corpus is stale. A fixed entry is a regression
     * gate for a bug that has been repaired: replay expects its
     * oracle NOT to fire, and a hit means the fix regressed.
     * Serialized as a '# status: fixed' directive.
     */
    bool fixed = false;

    ScenarioSpec spec;
};

/** Canonical file text of an entry (directives + spec). */
std::string corpusEntryText(const CorpusEntry &entry);

/** Parse an entry file's text; nullopt + *error on bad directives or
 * a malformed spec. */
std::optional<CorpusEntry>
parseCorpusEntry(const std::string &text,
                 std::string *error = nullptr);

/** Canonical file name: "<oracle>-<16-hex-digit spec hash>.scenario"
 * -- content-addressed, so re-archiving the same find is
 * idempotent. */
std::string corpusFileName(const CorpusEntry &entry);

/** Load every *.scenario file under @p dir, sorted by file name
 * (deterministic replay order). Fatal on malformed entries; returns
 * (file name, entry) pairs. Missing directory yields an empty
 * corpus. */
std::vector<std::pair<std::string, CorpusEntry>>
loadCorpus(const std::string &dir);

/** Write @p entry into @p dir (creating it) under its canonical
 * name; returns the file name. Fatal on I/O failure. */
std::string saveCorpusEntry(const std::string &dir,
                            const CorpusEntry &entry);

} // namespace fuzz
} // namespace kelp

#endif // KELP_FUZZ_FUZZER_HH
