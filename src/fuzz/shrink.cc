#include "fuzz/shrink.hh"

#include <algorithm>
#include <cmath>

namespace kelp {
namespace fuzz {

namespace {

/** Quarter-second grid (matches the mutator's time grid). */
double
grid(double v)
{
    return std::round(v * 4.0) / 4.0;
}

/** Drop scheduled kills that no longer fit inside the horizon. */
void
dropLateKills(exp::RunConfig &cfg)
{
    const double horizon = cfg.warmup + cfg.measure;
    if (cfg.killAt >= horizon)
        cfg.killAt = 0.0;
    cfg.kills.erase(std::remove_if(cfg.kills.begin(), cfg.kills.end(),
                                   [horizon](sim::Time t) {
                                       return t >= horizon;
                                   }),
                    cfg.kills.end());
}

} // namespace

std::vector<ScenarioSpec>
shrinkCandidates(const ScenarioSpec &spec)
{
    std::vector<ScenarioSpec> out;
    auto push = [&](ScenarioSpec cand) {
        if (cand != spec)
            out.push_back(std::move(cand));
    };
    const exp::RunConfig &c = spec.cfg;

    // Drop each scheduled controller kill.
    for (size_t i = 0; i < c.kills.size(); ++i) {
        ScenarioSpec cand = spec;
        cand.cfg.kills.erase(cand.cfg.kills.begin() +
                             static_cast<long>(i));
        push(std::move(cand));
    }
    if (c.killAt > 0.0) {
        ScenarioSpec cand = spec;
        cand.cfg.killAt = 0.0;
        push(std::move(cand));
    }

    // Disable churn wholesale, then soften it.
    if (c.churn.enabled) {
        {
            ScenarioSpec cand = spec;
            cand.cfg.churn = exp::ChurnConfig{};
            push(std::move(cand));
        }
        if (c.churn.crashProb > 0.0) {
            ScenarioSpec cand = spec;
            cand.cfg.churn.crashProb = 0.0;
            push(std::move(cand));
        }
        if (c.churn.maxLive > 1) {
            ScenarioSpec cand = spec;
            cand.cfg.churn.maxLive = 1;
            push(std::move(cand));
        }
        if (c.churn.arrivalRate > 0.02) {
            ScenarioSpec cand = spec;
            cand.cfg.churn.arrivalRate = 0.02;
            push(std::move(cand));
        }
    }

    // Zero each active fault class (resetting its scale knob too, so
    // the minimized plan prints without vestigial parameters).
    if (c.faults.dropProb > 0.0) {
        ScenarioSpec cand = spec;
        cand.cfg.faults.dropProb = 0.0;
        push(std::move(cand));
    }
    if (c.faults.stuckProb > 0.0) {
        ScenarioSpec cand = spec;
        cand.cfg.faults.stuckProb = 0.0;
        push(std::move(cand));
    }
    if (c.faults.noiseProb > 0.0) {
        ScenarioSpec cand = spec;
        cand.cfg.faults.noiseProb = 0.0;
        cand.cfg.faults.noiseFrac = hal::FaultPlan{}.noiseFrac;
        push(std::move(cand));
    }
    if (c.faults.spikeProb > 0.0) {
        ScenarioSpec cand = spec;
        cand.cfg.faults.spikeProb = 0.0;
        cand.cfg.faults.spikeScale = hal::FaultPlan{}.spikeScale;
        push(std::move(cand));
    }
    if (c.faults.knobFailProb > 0.0) {
        ScenarioSpec cand = spec;
        cand.cfg.faults.knobFailProb = 0.0;
        push(std::move(cand));
    }
    if (c.faults.knobDelayProb > 0.0) {
        ScenarioSpec cand = spec;
        cand.cfg.faults.knobDelayProb = 0.0;
        push(std::move(cand));
    }

    // Turn off request traffic wholesale, then soften its shape.
    if (c.serving.enabled) {
        {
            ScenarioSpec cand = spec;
            cand.cfg.serving = serve::ServeConfig{};
            push(std::move(cand));
        }
        if (c.serving.traffic.shape !=
            serve::TrafficSpec::Shape::Poisson) {
            ScenarioSpec cand = spec;
            serve::TrafficSpec plain;
            plain.qps = c.serving.traffic.qps;
            plain.lowFrac = c.serving.traffic.lowFrac;
            cand.cfg.serving.traffic = plain;
            push(std::move(cand));
        }
        if (c.serving.traffic.shape ==
                serve::TrafficSpec::Shape::Burst &&
            c.serving.traffic.spikeFactor > 2.0) {
            ScenarioSpec cand = spec;
            cand.cfg.serving.traffic.spikeFactor = 2.0;
            push(std::move(cand));
        }
        if (c.serving.traffic.qps > 100.0) {
            ScenarioSpec cand = spec;
            cand.cfg.serving.traffic.qps =
                std::max(100.0, grid(c.serving.traffic.qps / 2.0));
            push(std::move(cand));
        }
        if (c.serving.traffic.lowFrac > 0.0) {
            ScenarioSpec cand = spec;
            cand.cfg.serving.traffic.lowFrac = 0.0;
            push(std::move(cand));
        }
    }

    // Disarm the SLO ladder; restore default hysteresis.
    if (c.slo.enabled) {
        ScenarioSpec cand = spec;
        cand.cfg.slo = runtime::SloConfig{};
        push(std::move(cand));
    }

    // Remove the colocated workload, or scale it down.
    if (c.cpu) {
        ScenarioSpec cand = spec;
        cand.cfg.cpu.reset();
        cand.cfg.cpuInstances = 1;
        cand.cfg.cpuThreadsOverride = 0;
        push(std::move(cand));
    }
    if (c.cpuInstances > 1) {
        ScenarioSpec cand = spec;
        cand.cfg.cpuInstances = std::max(1, c.cpuInstances / 2);
        push(std::move(cand));
    }
    if (c.cpuThreadsOverride > 0) {
        ScenarioSpec cand = spec;
        cand.cfg.cpuThreadsOverride = 0;
        push(std::move(cand));
    }

    // Restore the hardened controller (the default).
    if (!c.hardened) {
        ScenarioSpec cand = spec;
        cand.cfg.hardened = true;
        push(std::move(cand));
    }

    // Shorten the run. Kills stranded past the new horizon are
    // dropped with it (also a reduction).
    if (c.warmup > 0.0) {
        ScenarioSpec cand = spec;
        cand.cfg.warmup = c.warmup < 1.0 ? 0.0 : grid(c.warmup / 2.0);
        dropLateKills(cand.cfg);
        push(std::move(cand));
    }
    if (c.measure > 6.0) {
        ScenarioSpec cand = spec;
        cand.cfg.measure = std::max(6.0, grid(c.measure / 2.0));
        dropLateKills(cand.cfg);
        push(std::move(cand));
    }

    return out;
}

ShrinkResult
shrinkWith(const ScenarioSpec &failing,
           const std::function<bool(const ScenarioSpec &)> &stillFails,
           int maxAttempts)
{
    ShrinkResult res;
    res.spec = failing;

    bool progress = true;
    while (progress) {
        progress = false;
        for (const ScenarioSpec &cand : shrinkCandidates(res.spec)) {
            if (res.attempts >= maxAttempts)
                return res; // budget exhausted mid-pass: not minimal
            ++res.attempts;
            if (stillFails(cand)) {
                res.spec = cand;
                ++res.steps;
                progress = true;
                break; // restart the pass from the smaller spec
            }
        }
    }
    res.minimal = true;
    return res;
}

ShrinkResult
shrink(const ScenarioSpec &failing, const std::string &oracle,
       const OracleConfig &ocfg, int maxAttempts)
{
    return shrinkWith(
        failing,
        [&](const ScenarioSpec &cand) {
            return oracleFires(cand, oracle, ocfg);
        },
        maxAttempts);
}

} // namespace fuzz
} // namespace kelp
