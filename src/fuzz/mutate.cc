#include "fuzz/mutate.hh"

#include <algorithm>
#include <cmath>

namespace kelp {
namespace fuzz {

namespace {

// The fuzzable envelope. Horizons are short on purpose: a trial runs
// the scenario up to three times (primary, replay, twin), and the
// search wants breadth, not long soaks.
constexpr double kMaxWarmup = 8.0;
constexpr double kMinMeasure = 6.0;
constexpr double kMaxMeasure = 24.0;
constexpr int kMaxKills = 3;

/** Round to a 0.25 s grid to keep spec text short and mutation steps
 * visible in diffs. */
double
grid(double v)
{
    return std::round(v * 4.0) / 4.0;
}

double
pickDouble(sim::Rng &rng, std::initializer_list<double> choices)
{
    const double *begin = choices.begin();
    return begin[rng.below(choices.size())];
}

int
pickInt(sim::Rng &rng, int lo, int hi)
{
    return lo + static_cast<int>(rng.below(
                    static_cast<uint64_t>(hi - lo + 1)));
}

sim::Time
runHorizon(const exp::RunConfig &cfg)
{
    return cfg.warmup + cfg.measure;
}

/** Re-clamp kill times into (0, horizon): horizon mutations must not
 * strand a kill after the end of the run where it never fires. */
void
clampKills(exp::RunConfig &cfg)
{
    double horizon = runHorizon(cfg);
    for (sim::Time &t : cfg.kills)
        t = std::clamp(t, 0.25, grid(horizon - 0.25));
}

/** The individual mutation operators, selected uniformly. */
void
mutateOnce(ScenarioSpec &spec, sim::Rng &rng)
{
    exp::RunConfig &cfg = spec.cfg;
    switch (rng.below(19)) {
      case 0:
        cfg.ml = static_cast<wl::MlWorkload>(rng.below(4));
        break;
      case 1: {
        static const exp::ConfigKind kKinds[] = {
            exp::ConfigKind::BL, exp::ConfigKind::CT,
            exp::ConfigKind::KPSD, exp::ConfigKind::KP,
            exp::ConfigKind::FG};
        cfg.config = kKinds[rng.below(5)];
        break;
      }
      case 2: {
        switch (rng.below(6)) {
          case 0:
            cfg.cpu.reset();
            break;
          case 1:
            cfg.cpu = wl::CpuWorkload::Stream;
            break;
          case 2:
            cfg.cpu = wl::CpuWorkload::Stitch;
            break;
          case 3:
            cfg.cpu = wl::CpuWorkload::Cpuml;
            break;
          case 4:
            cfg.cpu = wl::CpuWorkload::LlcAggressor;
            break;
          default:
            cfg.cpu = wl::CpuWorkload::DramAggressor;
            break;
        }
        break;
      }
      case 3:
        cfg.cpuInstances = pickInt(rng, 1, 6);
        break;
      case 4:
        cfg.cpuThreadsOverride =
            rng.chance(0.5) ? 0 : pickInt(rng, 4, 16);
        break;
      case 5:
        cfg.aggressorLevel =
            static_cast<wl::AggressorLevel>(rng.below(3));
        break;
      case 6:
        cfg.warmup = grid(rng.uniform(0.0, kMaxWarmup));
        cfg.measure = grid(rng.uniform(kMinMeasure, kMaxMeasure));
        clampKills(cfg);
        break;
      case 7:
        cfg.samplePeriod = pickDouble(rng, {0.5, 1.0, 2.0, 4.0});
        break;
      case 8:
        cfg.seed = rng.below(1000000);
        break;
      case 9: {
        // Toggle one fault class.
        double p = pickDouble(rng, {0.0, 0.02, 0.05, 0.1, 0.3});
        switch (rng.below(6)) {
          case 0:
            cfg.faults.dropProb = p;
            break;
          case 1:
            cfg.faults.stuckProb = p;
            break;
          case 2:
            cfg.faults.noiseProb = p;
            cfg.faults.noiseFrac =
                pickDouble(rng, {0.1, 0.2, 0.5});
            break;
          case 3:
            cfg.faults.spikeProb = p;
            cfg.faults.spikeScale =
                pickDouble(rng, {4.0, 10.0, 20.0});
            break;
          case 4:
            cfg.faults.knobFailProb = p;
            break;
          default:
            cfg.faults.knobDelayProb = p;
            break;
        }
        break;
      }
      case 10:
        cfg.faultSeed = rng.below(1000);
        break;
      case 11:
        cfg.hardened = !cfg.hardened;
        break;
      case 12: {
        cfg.churn.enabled = rng.chance(0.75);
        if (cfg.churn.enabled) {
            cfg.churn.arrivalRate =
                pickDouble(rng, {0.02, 0.05, 0.1, 0.25, 0.5});
            cfg.churn.crashProb =
                pickDouble(rng, {0.0, 0.1, 0.5, 1.0});
            cfg.churn.maxLive = pickInt(rng, 1, 8);
            cfg.churn.lifetimeScale =
                pickDouble(rng, {0.2, 0.5, 1.0, 2.0});
            cfg.churn.checkPeriod =
                pickDouble(rng, {0.25, 0.5, 1.0});
        }
        break;
      }
      case 13:
        cfg.churn.seed = rng.below(1000);
        break;
      case 14: {
        // Kill schedule: add, drop, or move a controller crash.
        if (cfg.kills.empty() ||
            (cfg.kills.size() <
                 static_cast<size_t>(kMaxKills) &&
             rng.chance(0.6))) {
            cfg.kills.push_back(
                std::clamp(grid(rng.uniform(0.25, runHorizon(cfg))),
                           0.25, runHorizon(cfg) - 0.25));
        } else if (rng.chance(0.5)) {
            cfg.kills.erase(cfg.kills.begin() +
                            static_cast<long>(
                                rng.below(cfg.kills.size())));
        } else {
            size_t i = rng.below(cfg.kills.size());
            cfg.kills[i] = std::clamp(
                grid(rng.uniform(0.25, runHorizon(cfg))), 0.25,
                runHorizon(cfg) - 0.25);
        }
        break;
      }
      case 15: {
        cfg.slo.enabled = rng.chance(0.75);
        if (cfg.slo.enabled) {
            cfg.slo.minPerfRatio =
                pickDouble(rng, {0.5, 0.7, 0.85, 0.95, 1.0});
        }
        break;
      }
      case 16:
        cfg.slo.escalateAfter = pickInt(rng, 1, 5);
        cfg.slo.deescalateAfter = pickInt(rng, 1, 8);
        break;
      case 17: {
        // Open-loop request traffic: shape, rate and spike intensity.
        cfg.serving.enabled = rng.chance(0.75);
        if (cfg.serving.enabled) {
            serve::TrafficSpec &t = cfg.serving.traffic;
            t = serve::TrafficSpec{};
            t.qps = pickDouble(rng, {100.0, 200.0, 300.0, 600.0});
            t.lowFrac = pickDouble(rng, {0.0, 0.2, 0.5});
            switch (rng.below(3)) {
              case 0:
                t.shape = serve::TrafficSpec::Shape::Poisson;
                break;
              case 1:
                t.shape = serve::TrafficSpec::Shape::Diurnal;
                t.diurnalAmp = pickDouble(rng, {0.25, 0.5, 0.9});
                t.diurnalPeriod = pickDouble(rng, {10.0, 20.0});
                break;
              default:
                t.shape = serve::TrafficSpec::Shape::Burst;
                t.spikeFactor =
                    pickDouble(rng, {2.0, 4.0, 8.0, 16.0});
                t.spikeStart = pickDouble(rng, {1.0, 2.0, 4.0});
                t.spikePeriod = pickDouble(rng, {5.0, 10.0});
                t.spikeLen = pickDouble(rng, {1.0, 2.0});
                break;
            }
        }
        break;
      }
      default:
        cfg.cpuInstances = pickInt(rng, 1, 4);
        cfg.cpuThreadsOverride = 0;
        break;
    }
}

} // namespace

std::vector<ScenarioSpec>
seedSpecs()
{
    std::vector<ScenarioSpec> seeds;

    // Quiet full-Kelp colocation: the paper path, shortened.
    {
        ScenarioSpec s;
        s.cfg.ml = wl::MlWorkload::Cnn1;
        s.cfg.config = exp::ConfigKind::KP;
        s.cfg.cpu = wl::CpuWorkload::Stitch;
        s.cfg.cpuInstances = 4;
        s.cfg.warmup = 4.0;
        s.cfg.measure = 12.0;
        s.cfg.samplePeriod = 1.0;
        seeds.push_back(s);
    }

    // Churny SLO run: dynamic membership + degradation ladder.
    {
        ScenarioSpec s;
        s.cfg.ml = wl::MlWorkload::Cnn2;
        s.cfg.config = exp::ConfigKind::KP;
        s.cfg.cpu = wl::CpuWorkload::Stitch;
        s.cfg.cpuInstances = 2;
        s.cfg.warmup = 2.0;
        s.cfg.measure = 16.0;
        s.cfg.samplePeriod = 1.0;
        s.cfg.churn.enabled = true;
        s.cfg.churn.arrivalRate = 0.25;
        s.cfg.churn.maxLive = 4;
        s.cfg.slo.enabled = true;
        s.cfg.slo.minPerfRatio = 0.85;
        seeds.push_back(s);
    }

    // Chaos run: degraded telemetry and actuation, hardened.
    {
        ScenarioSpec s;
        s.cfg.ml = wl::MlWorkload::Rnn1;
        s.cfg.config = exp::ConfigKind::KPSD;
        s.cfg.cpu = wl::CpuWorkload::DramAggressor;
        s.cfg.cpuThreadsOverride = 12;
        s.cfg.warmup = 2.0;
        s.cfg.measure = 12.0;
        s.cfg.samplePeriod = 1.0;
        s.cfg.faults.dropProb = 0.1;
        s.cfg.faults.knobFailProb = 0.2;
        seeds.push_back(s);
    }

    // Overloaded request serving: open-loop burst traffic against a
    // colocated antagonist, exercising the admission/brownout ladder.
    {
        ScenarioSpec s;
        s.cfg.ml = wl::MlWorkload::Rnn1;
        s.cfg.config = exp::ConfigKind::KP;
        s.cfg.cpu = wl::CpuWorkload::Stitch;
        s.cfg.cpuInstances = 3;
        s.cfg.warmup = 2.0;
        s.cfg.measure = 12.0;
        s.cfg.samplePeriod = 1.0;
        s.cfg.serving.enabled = true;
        s.cfg.serving.traffic.shape =
            serve::TrafficSpec::Shape::Burst;
        s.cfg.serving.traffic.qps = 300.0;
        s.cfg.serving.traffic.spikeFactor = 8.0;
        seeds.push_back(s);
    }

    // Crashy run: churn plus repeated controller kills.
    {
        ScenarioSpec s;
        s.cfg.ml = wl::MlWorkload::Cnn1;
        s.cfg.config = exp::ConfigKind::KP;
        s.cfg.cpu = wl::CpuWorkload::Stitch;
        s.cfg.cpuInstances = 3;
        s.cfg.warmup = 2.0;
        s.cfg.measure = 14.0;
        s.cfg.samplePeriod = 1.0;
        s.cfg.churn.enabled = true;
        s.cfg.churn.arrivalRate = 0.2;
        s.cfg.kills = {5.0, 9.0};
        seeds.push_back(s);
    }

    return seeds;
}

ScenarioSpec
freshSpec(sim::Rng &rng)
{
    std::vector<ScenarioSpec> seeds = seedSpecs();
    ScenarioSpec spec = seeds[rng.below(seeds.size())];
    mutateSpec(spec, rng, 1 + static_cast<int>(rng.below(3)));
    return spec;
}

void
mutateSpec(ScenarioSpec &spec, sim::Rng &rng, int steps)
{
    for (int i = 0; i < steps; ++i)
        mutateOnce(spec, rng);
    clampKills(spec.cfg);
}

ScenarioSpec
generateSpec(uint64_t base, uint64_t index,
             const std::vector<ScenarioSpec> &pool)
{
    sim::Rng rng = sim::Rng::derive(base, index);
    if (pool.empty() || rng.chance(0.2))
        return freshSpec(rng);
    ScenarioSpec spec = pool[rng.below(pool.size())];
    // 1 + Geometric(1/2) mutation steps: usually small edits, with a
    // long tail of composite jumps.
    int steps = 1;
    while (steps < 6 && rng.chance(0.5))
        ++steps;
    mutateSpec(spec, rng, steps);
    return spec;
}

} // namespace fuzz
} // namespace kelp
