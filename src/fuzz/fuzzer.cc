#include "fuzz/fuzzer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "exp/pool.hh"
#include "fuzz/mutate.hh"
#include "fuzz/shrink.hh"
#include "sim/log.hh"

namespace kelp {
namespace fuzz {

namespace {

/** FNV-1a 64-bit of the spec text (content addressing for corpus
 * file names; not security-relevant). */
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex16(uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

} // namespace

uint64_t
FuzzReport::unshrunk() const
{
    uint64_t n = 0;
    for (const Finding &f : findings) {
        if (!f.minimal)
            ++n;
    }
    return n;
}

std::string
FuzzReport::toText() const
{
    std::ostringstream os;
    os << "kelp-fuzz report\n";
    os << "seed=" << seed << "\n";
    os << "trials=" << trials << "\n";
    os << "findings=" << findings.size() << "\n";
    os << "duplicates=" << duplicates << "\n";
    os << "unshrunk=" << unshrunk() << "\n";
    os << "coverage-keys=" << coverageKeys << "\n";
    os << "pool-size=" << poolSize << "\n";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << "\n";
        os << "finding=" << (i + 1) << "\n";
        os << "trial=" << f.trial << "\n";
        os << "oracle=" << f.oracle << "\n";
        os << "detail=" << f.detail << "\n";
        os << "shrink-steps=" << f.shrinkSteps << "\n";
        os << "minimal=" << (f.minimal ? "true" : "false") << "\n";
        os << "spec:\n" << f.shrunk.toString();
    }
    return os.str();
}

FuzzReport
fuzz(const FuzzOptions &opts)
{
    /*
     * Count mode, set on the calling thread before any fan-out: the
     * oracles count violations per trial; Fatal mode would abort the
     * whole campaign at the first find.
     */
    sim::setContractMode(sim::ContractMode::Count);

    FuzzReport rep;
    rep.seed = opts.seed;
    rep.trials = static_cast<uint64_t>(std::max(0, opts.trials));

    std::vector<ScenarioSpec> pool = seedSpecs();
    pool.insert(pool.end(), opts.extraSeeds.begin(),
                opts.extraSeeds.end());

    std::set<std::string> coverage;
    std::set<std::string> seenFindings;

    const int trials = std::max(0, opts.trials);
    const int batch = std::max(1, opts.batch);

    for (int start = 0; start < trials; start += batch) {
        const int count = std::min(batch, trials - start);

        /*
         * The guidance state is frozen per batch: every spec in the
         * batch derives from (seed, global trial index, snapshot)
         * only, so workers can race freely and the jobs count cannot
         * influence what gets generated.
         */
        const std::vector<ScenarioSpec> snapshot = pool;
        std::vector<ScenarioSpec> specs(
            static_cast<size_t>(count));
        std::vector<TrialOutcome> outcomes(
            static_cast<size_t>(count));

        exp::runJobs(
            count, opts.jobs,
            [&](int i) {
                specs[static_cast<size_t>(i)] = generateSpec(
                    opts.seed,
                    static_cast<uint64_t>(start + i), snapshot);
                outcomes[static_cast<size_t>(i)] = runTrial(
                    specs[static_cast<size_t>(i)], opts.oracle);
            },
            [&](int i) {
                // Serial merge, strict trial order (pool thread
                // commits are sequenced by index).
                const ScenarioSpec &spec =
                    specs[static_cast<size_t>(i)];
                const TrialOutcome &out =
                    outcomes[static_cast<size_t>(i)];

                bool fresh = false;
                for (const std::string &k : out.coverage) {
                    if (coverage.insert(k).second)
                        fresh = true;
                }
                if (fresh)
                    pool.push_back(spec);

                if (!out.fired())
                    return;
                const OracleHit &hit = out.hits.front();

                Finding f;
                f.trial = static_cast<uint64_t>(start + i);
                f.oracle = hit.name;
                f.detail = hit.detail;
                f.spec = spec;
                f.shrunk = spec;
                if (opts.shrink) {
                    ShrinkResult sr =
                        shrink(spec, hit.name, opts.oracle,
                               opts.maxShrinkAttempts);
                    f.shrunk = sr.spec;
                    f.shrinkSteps = sr.steps;
                    f.minimal = sr.minimal;
                }

                const std::string key =
                    f.oracle + "\n" + f.shrunk.toString();
                if (!seenFindings.insert(key).second) {
                    ++rep.duplicates;
                    return;
                }
                rep.findings.push_back(std::move(f));
            });
    }

    rep.coverageKeys = coverage.size();
    rep.poolSize = pool.size();
    return rep;
}

std::string
corpusEntryText(const CorpusEntry &entry)
{
    std::ostringstream os;
    os << "# kelp-fuzz regression scenario\n";
    os << "# oracle: " << entry.oracle << "\n";
    if (entry.fixed)
        os << "# status: fixed\n";
    os << entry.spec.toString();
    return os.str();
}

std::optional<CorpusEntry>
parseCorpusEntry(const std::string &text, std::string *error)
{
    auto fail = [&](const std::string &what)
        -> std::optional<CorpusEntry> {
        if (error)
            *error = what;
        return std::nullopt;
    };

    static const std::string kOracle = "# oracle:";
    static const std::string kStatus = "# status:";
    CorpusEntry entry;
    bool sawStatus = false;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        const std::string *directive = nullptr;
        if (line.compare(0, kOracle.size(), kOracle) == 0)
            directive = &kOracle;
        else if (line.compare(0, kStatus.size(), kStatus) == 0)
            directive = &kStatus;
        else
            continue;
        std::string name = line.substr(directive->size());
        size_t b = name.find_first_not_of(" \t");
        size_t e = name.find_last_not_of(" \t\r");
        if (b == std::string::npos)
            return fail("empty '" + *directive + "' directive");
        name = name.substr(b, e - b + 1);
        if (directive == &kStatus) {
            if (sawStatus)
                return fail("multiple '# status:' directives");
            if (name != "fixed")
                return fail("unknown status '" + name +
                            "' (only 'fixed' is recognized)");
            sawStatus = true;
            entry.fixed = true;
            continue;
        }
        if (!entry.oracle.empty())
            return fail("multiple '# oracle:' directives");
        entry.oracle = name;
    }
    if (entry.oracle.empty())
        return fail("missing '# oracle: <name>' directive");
    const std::vector<std::string> &names = oracleNames();
    if (std::find(names.begin(), names.end(), entry.oracle) ==
        names.end())
        return fail("unknown oracle '" + entry.oracle + "'");

    std::string specError;
    std::optional<ScenarioSpec> spec =
        ScenarioSpec::tryParse(text, &specError);
    if (!spec)
        return fail(specError);
    entry.spec = *spec;
    return entry;
}

std::string
corpusFileName(const CorpusEntry &entry)
{
    return entry.oracle + "-" + hex16(fnv1a(entry.spec.toString())) +
           ".scenario";
}

std::vector<std::pair<std::string, CorpusEntry>>
loadCorpus(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<std::pair<std::string, CorpusEntry>> entries;
    if (!fs::exists(dir))
        return entries;

    std::vector<std::string> names;
    for (const fs::directory_entry &de : fs::directory_iterator(dir)) {
        if (de.path().extension() == ".scenario")
            names.push_back(de.path().filename().string());
    }
    std::sort(names.begin(), names.end());

    for (const std::string &name : names) {
        std::ifstream in(fs::path(dir) / name);
        std::ostringstream text;
        text << in.rdbuf();
        if (!in)
            sim::fatal("cannot read corpus entry ", dir, "/", name);
        std::string error;
        std::optional<CorpusEntry> entry =
            parseCorpusEntry(text.str(), &error);
        if (!entry)
            sim::fatal("bad corpus entry ", dir, "/", name, ": ",
                       error);
        entries.emplace_back(name, std::move(*entry));
    }
    return entries;
}

std::string
saveCorpusEntry(const std::string &dir, const CorpusEntry &entry)
{
    namespace fs = std::filesystem;
    fs::create_directories(dir);
    const std::string name = corpusFileName(entry);
    const fs::path path = fs::path(dir) / name;
    std::ofstream out(path);
    out << corpusEntryText(entry);
    out.close();
    if (!out)
        sim::fatal("cannot write corpus entry ", path.string());
    return name;
}

} // namespace fuzz
} // namespace kelp
