/**
 * @file
 * Seeded generator/mutator over the ScenarioSpec space.
 *
 * All randomness flows through a caller-provided sim::Rng, so spec
 * generation is a pure function of the rng stream: the fuzzer derives
 * one stream per trial index (sim::Rng::derive) and gets the same
 * spec sequence for any worker count.
 *
 * Generated values are clamped to a "fuzzable" envelope -- short
 * horizons (a trial is three simulated runs, so seconds matter),
 * bounded churn/fault intensities, kill times inside the run -- and
 * every emitted spec parses back cleanly (tested), so the shrinker
 * and the corpus never see an invalid spec.
 */

#ifndef KELP_FUZZ_MUTATE_HH
#define KELP_FUZZ_MUTATE_HH

#include <vector>

#include "fuzz/spec.hh"
#include "sim/rng.hh"

namespace kelp {
namespace fuzz {

/**
 * The deterministic built-in starting corpus: a handful of archetype
 * scenarios (quiet KP run, churny SLO run, chaos run, crashy run)
 * that give the first mutations something structured to work from.
 */
std::vector<ScenarioSpec> seedSpecs();

/** A fresh random scenario inside the fuzzable envelope. */
ScenarioSpec freshSpec(sim::Rng &rng);

/** Apply @p steps random single-field mutations in place. */
void mutateSpec(ScenarioSpec &spec, sim::Rng &rng, int steps);

/**
 * Generate the spec for trial @p index of a fuzz run seeded with
 * @p base: derive the trial's rng stream, then either mutate a
 * parent drawn from @p pool or (sometimes, and always when the pool
 * is empty) build a fresh spec. Pure in (base, index, pool).
 */
ScenarioSpec generateSpec(uint64_t base, uint64_t index,
                          const std::vector<ScenarioSpec> &pool);

} // namespace fuzz
} // namespace kelp

#endif // KELP_FUZZ_MUTATE_HH
