#include "fuzz/oracle.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "sim/log.hh"
#include "trace/decision_log.hh"

namespace kelp {
namespace fuzz {

namespace {

/** One executed run: summary, audit log, and per-thread contract
 * delta, plus the watchdog recovery threshold the run was built
 * with (for the stuck-watchdog runway computation). */
struct RunCapture
{
    exp::RunResult result;
    trace::DecisionLog log;
    uint64_t contractDelta = 0;
    int recoverThreshold = 3;
};

/**
 * Execute one config with a decision log attached. Contract
 * violations are measured with the calling thread's counter, so
 * concurrent trials on pool workers attribute violations exactly.
 *
 * Never writes ContractMode from a worker: parallel callers must have
 * set Count mode up front. The serial fallback here keeps one-off
 * callers (corpus replay of a single spec, tests) honest.
 */
RunCapture
execute(const exp::RunConfig &cfg)
{
    if (sim::contractMode() != sim::ContractMode::Count)
        sim::setContractMode(sim::ContractMode::Count);

    RunCapture cap;
    exp::Observability obs;
    obs.decisions = &cap.log;

    const uint64_t before = sim::contractViolationsHere();
    exp::Scenario s = exp::buildScenario(cfg, obs);
    cap.result = exp::measureScenario(s, cfg);
    cap.contractDelta = sim::contractViolationsHere() - before;
    if (s.manager)
        cap.recoverThreshold = s.manager->watchdog().recoverThreshold;
    return cap;
}

void
field(std::ostringstream &os, const char *key, double v)
{
    os << key << "=" << formatDouble(v) << "\n";
}

void
field(std::ostringstream &os, const char *key, uint64_t v)
{
    os << key << "=" << v << "\n";
}

/** '+', '-', or '=' for one knob delta. */
char
direction(int oldV, int newV)
{
    if (newV > oldV)
        return '+';
    if (newV < oldV)
        return '-';
    return '=';
}

bool
badDouble(double v)
{
    return !std::isfinite(v) || v < 0.0;
}

/** First summary field that is NaN/inf/negative, or "" if none. */
std::string
firstBadMetric(const exp::RunResult &r)
{
    const struct
    {
        const char *name;
        double value;
    } checks[] = {
        {"mlPerf", r.mlPerf},
        {"mlTailP95", r.mlTailP95},
        {"cpuThroughput", r.cpuThroughput},
        {"avgLoCores", r.avgLoCores},
        {"avgLoPrefetchers", r.avgLoPrefetchers},
        {"avgHiBackfill", r.avgHiBackfill},
        {"timeInFailSafe", r.timeInFailSafe},
        {"avgSaturation", r.avgSaturation},
        {"avgSocketBw", r.avgSocketBw},
        {"reqP99", r.reqP99},
        {"reqP999", r.reqP999},
        {"reqP9999", r.reqP9999},
    };
    for (const auto &c : checks) {
        if (badDouble(c.value))
            return std::string(c.name) + "=" + formatDouble(c.value);
    }
    if (r.sloFinalRung < 0)
        return "sloFinalRung=" + std::to_string(r.sloFinalRung);
    return "";
}

/** True when the spec has any controller kill scheduled. */
bool
hasKills(const exp::RunConfig &cfg)
{
    return cfg.killAt > 0.0 || !cfg.kills.empty();
}

/**
 * The stuck-watchdog judgment: the last fail-safe entry was never
 * followed by a re-arm, even though the run left enough healthy
 * runway (recoverThreshold consecutive samples, plus slack) for
 * recovery. A trip shortly before end of run is not "stuck" -- the
 * watchdog simply ran out of samples.
 */
std::string
stuckWatchdog(const RunCapture &cap, const exp::RunConfig &cfg)
{
    sim::Time lastTrip = -1.0;
    bool rearmedAfter = true;
    for (const trace::DecisionEvent &ev : cap.log.events()) {
        if (ev.kind == "watchdog-trip") {
            lastTrip = ev.time;
            rearmedAfter = false;
        } else if (ev.kind == "watchdog-rearm") {
            rearmedAfter = true;
        }
    }
    if (lastTrip < 0.0 || rearmedAfter)
        return "";
    const sim::Time end = cfg.warmup + cfg.measure;
    const sim::Time runway =
        (cap.recoverThreshold + 2) * cfg.samplePeriod;
    if (lastTrip + runway > end)
        return "";
    std::ostringstream os;
    os << "tripped at " << formatDouble(lastTrip)
       << "s, never re-armed by end of run ("
       << formatDouble(end) << "s)";
    return os.str();
}

} // namespace

const std::vector<std::string> &
oracleNames()
{
    static const std::vector<std::string> kNames = {
        "contract-violation", "watchdog-stuck",
        "ladder-thrash",      "bad-metric",
        "request-conservation", "restart-divergence",
        "nondeterminism",
    };
    return kNames;
}

std::string
resultText(const exp::RunResult &r)
{
    std::ostringstream os;
    field(os, "mlPerf", r.mlPerf);
    field(os, "mlTailP95", r.mlTailP95);
    field(os, "cpuThroughput", r.cpuThroughput);
    field(os, "avgLoCores", r.avgLoCores);
    field(os, "avgLoPrefetchers", r.avgLoPrefetchers);
    field(os, "avgHiBackfill", r.avgHiBackfill);
    field(os, "timeInFailSafe", r.timeInFailSafe);
    field(os, "failSafeEntries", r.failSafeEntries);
    field(os, "avgSaturation", r.avgSaturation);
    field(os, "avgSocketBw", r.avgSocketBw);
    field(os, "churnArrivals", r.churnArrivals);
    field(os, "churnFinishes", r.churnFinishes);
    field(os, "churnCrashes", r.churnCrashes);
    field(os, "churnRejected", r.churnRejected);
    field(os, "restarts", r.restarts);
    field(os, "sloViolations", r.sloViolations);
    field(os, "sloTransitions", r.sloTransitions);
    os << "sloFinalRung=" << r.sloFinalRung << "\n";
    field(os, "reqArrivals", r.reqArrivals);
    field(os, "reqAdmitted", r.reqAdmitted);
    field(os, "reqRejected", r.reqRejected);
    field(os, "reqShed", r.reqShed);
    field(os, "reqExpired", r.reqExpired);
    field(os, "reqCompleted", r.reqCompleted);
    field(os, "reqInFlight", r.reqInFlight);
    field(os, "brownoutTransitions", r.brownoutTransitions);
    os << "brownoutFinal=" << r.brownoutFinal << "\n";
    field(os, "reqP99", r.reqP99);
    field(os, "reqP999", r.reqP999);
    field(os, "reqP9999", r.reqP9999);
    return os.str();
}

double
ladderThrashRate(uint64_t transitions, double horizon,
                 double samplePeriod)
{
    if (horizon <= 0.0 || samplePeriod <= 0.0)
        return 0.0;
    const double samples = horizon / samplePeriod;
    return static_cast<double>(transitions) / samples;
}

std::vector<std::string>
coverageKeys(const trace::DecisionLog &log)
{
    std::set<std::string> keys;
    const std::string *prev = nullptr;
    for (const trace::DecisionEvent &ev : log.events()) {
        keys.insert("kind:" + ev.kind);
        if (prev)
            keys.insert("pair:" + *prev + ">" + ev.kind);
        prev = &ev.kind;
        if (ev.changedKnobs()) {
            std::string sig = "knob:";
            sig += direction(ev.loCoresOld, ev.loCoresNew);
            sig += direction(ev.loPrefetchersOld, ev.loPrefetchersNew);
            sig += direction(ev.hiBackfillOld, ev.hiBackfillNew);
            keys.insert(sig);
        }
    }
    return std::vector<std::string>(keys.begin(), keys.end());
}

TrialOutcome
runTrial(const ScenarioSpec &spec, const OracleConfig &ocfg)
{
    const exp::RunConfig &cfg = spec.cfg;
    RunCapture primary = execute(cfg);

    TrialOutcome out;
    out.resultText = resultText(primary.result);
    out.coverage = coverageKeys(primary.log);
    out.decisionEvents = primary.log.size();

    if (primary.contractDelta > 0) {
        out.hits.push_back(
            {"contract-violation",
             std::to_string(primary.contractDelta) +
                 " contract violation(s) during the run"});
    }

    if (std::string why = stuckWatchdog(primary, cfg); !why.empty())
        out.hits.push_back({"watchdog-stuck", why});

    if (cfg.slo.enabled) {
        const double rate =
            ladderThrashRate(primary.result.sloTransitions,
                             cfg.warmup + cfg.measure,
                             cfg.samplePeriod);
        if (rate > ocfg.thrashRate) {
            out.hits.push_back(
                {"ladder-thrash",
                 "rung transition rate " + formatDouble(rate) +
                     "/sample exceeds " +
                     formatDouble(ocfg.thrashRate)});
        }
    }

    if (std::string bad = firstBadMetric(primary.result); !bad.empty())
        out.hits.push_back({"bad-metric", bad});

    /*
     * Request conservation: every arrival is accounted for exactly
     * once. The server enforces the same books with KELP_INVARIANT
     * every tick; this end-of-run check re-derives it from the
     * summary counters so a broken drop path is caught even when a
     * build strips contracts.
     */
    if (cfg.serving.enabled) {
        const exp::RunResult &r = primary.result;
        const uint64_t admitted =
            r.reqCompleted + r.reqShed + r.reqExpired + r.reqInFlight;
        const uint64_t arrivals = r.reqAdmitted + r.reqRejected;
        if (r.reqAdmitted != admitted || r.reqArrivals != arrivals) {
            std::ostringstream os;
            os << "arrivals=" << r.reqArrivals << " admitted="
               << r.reqAdmitted << " rejected=" << r.reqRejected
               << " completed=" << r.reqCompleted << " shed="
               << r.reqShed << " expired=" << r.reqExpired
               << " in-flight=" << r.reqInFlight
               << " do not balance";
            out.hits.push_back({"request-conservation", os.str()});
        }
    }

    /*
     * restart-divergence is only a defect where restart is specified
     * to be bit-neutral: no faults (reconciliation against a faulty
     * HAL may legitimately repair differently) and no SLO ladder (a
     * restart resets the guard's hysteresis streaks by design).
     */
    if (ocfg.twinRun && hasKills(cfg) && !cfg.faults.any() &&
        !cfg.slo.enabled) {
        exp::RunConfig twin = cfg;
        twin.killAt = 0.0;
        twin.kills.clear();
        RunCapture unkilled = execute(twin);
        exp::RunResult masked = unkilled.result;
        masked.restarts = primary.result.restarts;
        if (resultText(masked) != out.resultText) {
            out.hits.push_back(
                {"restart-divergence",
                 "killed run differs from unkilled twin beyond the "
                 "restart counter"});
        }
    }

    if (ocfg.doubleRun) {
        RunCapture replay = execute(cfg);
        if (resultText(replay.result) != out.resultText) {
            out.hits.push_back(
                {"nondeterminism",
                 "same-seed re-run produced different metrics"});
        } else if (replay.log.toJsonl() != primary.log.toJsonl()) {
            out.hits.push_back(
                {"nondeterminism",
                 "same-seed re-run produced a different decision "
                 "log"});
        }
    }

    return out;
}

bool
oracleFires(const ScenarioSpec &spec, const std::string &oracle,
            const OracleConfig &ocfg)
{
    const std::vector<std::string> &names = oracleNames();
    if (std::find(names.begin(), names.end(), oracle) == names.end())
        sim::fatal("unknown oracle name: ", oracle);

    // Skip the expensive extra runs unless this oracle needs them.
    OracleConfig narrowed = ocfg;
    narrowed.twinRun = (oracle == "restart-divergence");
    narrowed.doubleRun = (oracle == "nondeterminism");

    TrialOutcome out = runTrial(spec, narrowed);
    for (const OracleHit &hit : out.hits) {
        if (hit.name == oracle)
            return true;
    }
    return false;
}

} // namespace fuzz
} // namespace kelp
