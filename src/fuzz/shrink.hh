/**
 * @file
 * Delta-debugging shrinker: minimize a failing ScenarioSpec while its
 * oracle still fires.
 *
 * The shrinker is greedy over a fixed, deterministic candidate order:
 * each pass proposes every single-step reduction of the current spec
 * (drop a kill, disable churn, zero one fault class, disarm the SLO
 * ladder, remove the colocated workload, halve the horizon, ...); the
 * first candidate that still fails becomes the new current spec and
 * the pass restarts. At the fixpoint no single-step reduction fails
 * any more -- the result is 1-minimal with respect to the candidate
 * grammar, which is exactly the property the corpus regression test
 * asserts.
 *
 * Every candidate strictly reduces a well-founded "size" of the spec
 * (fewer scheduled events, fewer enabled subsystems, shorter
 * horizon), so shrinking terminates without a budget; the budget
 * only caps worst-case work on expensive oracles.
 */

#ifndef KELP_FUZZ_SHRINK_HH
#define KELP_FUZZ_SHRINK_HH

#include <functional>
#include <string>
#include <vector>

#include "fuzz/oracle.hh"
#include "fuzz/spec.hh"

namespace kelp {
namespace fuzz {

/** Outcome of one shrink. */
struct ShrinkResult
{
    /** The minimized spec (== input when nothing could shrink). */
    ScenarioSpec spec;

    /** Accepted reductions. */
    int steps = 0;

    /** Candidate evaluations spent. */
    int attempts = 0;

    /** True when the result is 1-minimal (a full candidate pass ran
     * with no acceptance); false when the attempt budget ran out
     * first. */
    bool minimal = false;
};

/**
 * All single-step reductions of @p spec, in the fixed deterministic
 * order the shrinker tries them. Candidates identical to the input
 * are filtered out.
 */
std::vector<ScenarioSpec> shrinkCandidates(const ScenarioSpec &spec);

/**
 * Shrink @p failing while @p stillFails holds, spending at most
 * @p maxAttempts predicate evaluations. The predicate must be
 * deterministic; it is never called on @p failing itself (the caller
 * established that it fails).
 */
ShrinkResult
shrinkWith(const ScenarioSpec &failing,
           const std::function<bool(const ScenarioSpec &)> &stillFails,
           int maxAttempts);

/** Shrink @p failing while the named oracle still fires. */
ShrinkResult shrink(const ScenarioSpec &failing,
                    const std::string &oracle,
                    const OracleConfig &ocfg, int maxAttempts);

} // namespace fuzz
} // namespace kelp

#endif // KELP_FUZZ_SHRINK_HH
