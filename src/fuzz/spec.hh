/**
 * @file
 * ScenarioSpec: a canonical, round-trippable text serialization of
 * everything that defines one robustness run -- the exp::RunConfig
 * workload mix and timing, the churn plan, the HAL fault plan, the
 * SLO target, the controller kill/restart schedule, and the seeds.
 *
 * The grammar is deliberately dumb: one `key=value` per line, `#`
 * comments, every key printed on every spec in a fixed order, doubles
 * rendered in shortest round-trip decimal form. That buys the three
 * properties the fuzzer needs:
 *
 *  - canonical: toString() is a fixpoint (parsing a printed spec and
 *    printing it again reproduces the same bytes), so specs can be
 *    compared, deduplicated, and diffed as strings;
 *  - mutable: the mutator and the shrinker edit the typed RunConfig
 *    and re-print, never the text;
 *  - archival: a shrunk failing spec checked into tests/corpus/
 *    replays byte-identically years later.
 *
 * Parsing is strict -- unknown keys, duplicate keys, malformed
 * values, and out-of-range values are errors -- so a typo in a hand-
 * edited corpus entry cannot silently run a different scenario.
 *
 * The grammar covers the robustness subspace of RunConfig (the knobs
 * the fuzzer searches). Fields outside it (aggressor data placement,
 * forced prefetcher fractions, open-loop QPS) keep their defaults;
 * serializing a config that changed them loses those changes.
 */

#ifndef KELP_FUZZ_SPEC_HH
#define KELP_FUZZ_SPEC_HH

#include <optional>
#include <string>

#include "exp/scenario.hh"

namespace kelp {
namespace fuzz {

/** Shortest decimal form of @p v that strtod() parses back to the
 * exact same double; re-rendering the reparse reproduces the same
 * bytes. The canonical number format of the spec grammar. */
std::string formatDouble(double v);

/** One fuzzable scenario. */
struct ScenarioSpec
{
    exp::RunConfig cfg;

    /** Canonical text form (see file comment). */
    std::string toString() const;

    /**
     * Strict parse of a spec text. Returns std::nullopt on any error
     * and, when @p error is non-null, stores a description. Keys not
     * present keep their RunConfig defaults; present keys must be
     * unique and well-formed.
     */
    static std::optional<ScenarioSpec>
    tryParse(const std::string &text, std::string *error = nullptr);

    /** Fatal-on-error parse (CLI paths). */
    static ScenarioSpec parse(const std::string &text);

    /** Specs compare by their canonical text. */
    bool operator==(const ScenarioSpec &o) const;
    bool operator!=(const ScenarioSpec &o) const;
};

} // namespace fuzz
} // namespace kelp

#endif // KELP_FUZZ_SPEC_HH
