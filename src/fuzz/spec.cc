#include "fuzz/spec.hh"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "sim/log.hh"

namespace kelp {
namespace fuzz {

std::string
formatDouble(double v)
{
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

namespace {

const char *
mlKey(wl::MlWorkload w)
{
    switch (w) {
      case wl::MlWorkload::Rnn1:
        return "rnn1";
      case wl::MlWorkload::Cnn1:
        return "cnn1";
      case wl::MlWorkload::Cnn2:
        return "cnn2";
      case wl::MlWorkload::Cnn3:
        return "cnn3";
    }
    return "?";
}

const char *
configKey(exp::ConfigKind k)
{
    switch (k) {
      case exp::ConfigKind::BL:
        return "bl";
      case exp::ConfigKind::CT:
        return "ct";
      case exp::ConfigKind::KPSD:
        return "kpsd";
      case exp::ConfigKind::KP:
        return "kp";
      case exp::ConfigKind::FG:
        return "fg";
    }
    return "?";
}

const char *
cpuKey(const std::optional<wl::CpuWorkload> &cpu)
{
    if (!cpu)
        return "none";
    switch (*cpu) {
      case wl::CpuWorkload::Stream:
        return "stream";
      case wl::CpuWorkload::Stitch:
        return "stitch";
      case wl::CpuWorkload::Cpuml:
        return "cpuml";
      case wl::CpuWorkload::LlcAggressor:
        return "llc";
      case wl::CpuWorkload::DramAggressor:
        return "dram";
    }
    return "?";
}

const char *
levelKey(wl::AggressorLevel l)
{
    switch (l) {
      case wl::AggressorLevel::Low:
        return "low";
      case wl::AggressorLevel::Medium:
        return "medium";
      case wl::AggressorLevel::High:
        return "high";
    }
    return "?";
}

/** The full kill schedule (killAt folded in), sorted. */
std::vector<sim::Time>
killSchedule(const exp::RunConfig &cfg)
{
    std::vector<sim::Time> kills;
    if (cfg.killAt > 0.0)
        kills.push_back(cfg.killAt);
    kills.insert(kills.end(), cfg.kills.begin(), cfg.kills.end());
    std::sort(kills.begin(), kills.end());
    return kills;
}

// ---------------------------------------------------------------
// Parse helpers. All return false on malformed input and leave an
// explanation in `err`.

bool
parseDoubleValue(const std::string &s, double &out, std::string &err)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (s.empty() || !end || *end != '\0') {
        err = "bad number '" + s + "'";
        return false;
    }
    out = v;
    return true;
}

bool
parseIntValue(const std::string &s, long &out, std::string &err)
{
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (s.empty() || !end || *end != '\0') {
        err = "bad integer '" + s + "'";
        return false;
    }
    out = v;
    return true;
}

bool
parseU64Value(const std::string &s, uint64_t &out, std::string &err)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || !end || *end != '\0' ||
        s.find('-') != std::string::npos) {
        err = "bad unsigned integer '" + s + "'";
        return false;
    }
    out = v;
    return true;
}

bool
parseBoolValue(const std::string &s, bool &out, std::string &err)
{
    if (s == "true") {
        out = true;
        return true;
    }
    if (s == "false") {
        out = false;
        return true;
    }
    err = "bad boolean '" + s + "' (true|false)";
    return false;
}

std::string
trimmedCopy(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

} // namespace

std::string
ScenarioSpec::toString() const
{
    std::ostringstream os;
    os << "ml=" << mlKey(cfg.ml) << "\n";
    os << "config=" << configKey(cfg.config) << "\n";
    os << "cpu=" << cpuKey(cfg.cpu) << "\n";
    os << "instances=" << cfg.cpuInstances << "\n";
    os << "threads=" << cfg.cpuThreadsOverride << "\n";
    os << "level=" << levelKey(cfg.aggressorLevel) << "\n";
    os << "traffic="
       << (cfg.serving.enabled ? cfg.serving.traffic.toString() : "")
       << "\n";
    os << "warmup=" << formatDouble(cfg.warmup) << "\n";
    os << "measure=" << formatDouble(cfg.measure) << "\n";
    os << "period=" << formatDouble(cfg.samplePeriod) << "\n";
    os << "seed=" << cfg.seed << "\n";
    os << "faults=" << cfg.faults.toString() << "\n";
    os << "fault-seed=" << cfg.faultSeed << "\n";
    os << "hardened=" << (cfg.hardened ? "true" : "false") << "\n";
    os << "churn=" << (cfg.churn.enabled ? "true" : "false") << "\n";
    os << "churn-rate=" << formatDouble(cfg.churn.arrivalRate) << "\n";
    os << "churn-life=" << formatDouble(cfg.churn.lifetimeScale)
       << "\n";
    os << "churn-crash=" << formatDouble(cfg.churn.crashProb) << "\n";
    os << "churn-max=" << cfg.churn.maxLive << "\n";
    os << "churn-seed=" << cfg.churn.seed << "\n";
    os << "churn-check=" << formatDouble(cfg.churn.checkPeriod)
       << "\n";
    os << "kills=";
    const std::vector<sim::Time> kills = killSchedule(cfg);
    for (size_t i = 0; i < kills.size(); ++i)
        os << (i ? "," : "") << formatDouble(kills[i]);
    os << "\n";
    os << "slo=" << (cfg.slo.enabled ? "true" : "false") << "\n";
    os << "slo-floor=" << formatDouble(cfg.slo.minPerfRatio) << "\n";
    os << "slo-escalate=" << cfg.slo.escalateAfter << "\n";
    os << "slo-deescalate=" << cfg.slo.deescalateAfter << "\n";
    return os.str();
}

std::optional<ScenarioSpec>
ScenarioSpec::tryParse(const std::string &text, std::string *error)
{
    ScenarioSpec spec;
    exp::RunConfig &cfg = spec.cfg;
    std::set<std::string> seen;

    auto fail = [&](int line, const std::string &what)
        -> std::optional<ScenarioSpec> {
        if (error) {
            *error = "spec line " + std::to_string(line) + ": " + what;
        }
        return std::nullopt;
    };

    std::istringstream is(text);
    std::string raw;
    int lineNo = 0;
    while (std::getline(is, raw)) {
        ++lineNo;
        std::string line = trimmedCopy(raw);
        if (line.empty() || line[0] == '#')
            continue;
        size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail(lineNo, "expected key=value, got '" + line +
                                "'");
        std::string key = trimmedCopy(line.substr(0, eq));
        std::string value = trimmedCopy(line.substr(eq + 1));
        if (!seen.insert(key).second)
            return fail(lineNo, "duplicate key '" + key + "'");

        std::string err;
        double d = 0.0;
        long n = 0;
        uint64_t u = 0;
        bool b = false;

        if (key == "ml") {
            if (value == "rnn1")
                cfg.ml = wl::MlWorkload::Rnn1;
            else if (value == "cnn1")
                cfg.ml = wl::MlWorkload::Cnn1;
            else if (value == "cnn2")
                cfg.ml = wl::MlWorkload::Cnn2;
            else if (value == "cnn3")
                cfg.ml = wl::MlWorkload::Cnn3;
            else
                return fail(lineNo, "unknown ml workload '" + value +
                                    "' (rnn1|cnn1|cnn2|cnn3)");
        } else if (key == "config") {
            if (value == "bl")
                cfg.config = exp::ConfigKind::BL;
            else if (value == "ct")
                cfg.config = exp::ConfigKind::CT;
            else if (value == "kpsd")
                cfg.config = exp::ConfigKind::KPSD;
            else if (value == "kp")
                cfg.config = exp::ConfigKind::KP;
            else if (value == "fg")
                cfg.config = exp::ConfigKind::FG;
            else
                return fail(lineNo, "unknown config '" + value +
                                    "' (bl|ct|kpsd|kp|fg)");
        } else if (key == "cpu") {
            if (value == "none")
                cfg.cpu.reset();
            else if (value == "stream")
                cfg.cpu = wl::CpuWorkload::Stream;
            else if (value == "stitch")
                cfg.cpu = wl::CpuWorkload::Stitch;
            else if (value == "cpuml")
                cfg.cpu = wl::CpuWorkload::Cpuml;
            else if (value == "llc")
                cfg.cpu = wl::CpuWorkload::LlcAggressor;
            else if (value == "dram")
                cfg.cpu = wl::CpuWorkload::DramAggressor;
            else
                return fail(lineNo,
                            "unknown cpu workload '" + value +
                            "' (none|stream|stitch|cpuml|llc|dram)");
        } else if (key == "instances") {
            if (!parseIntValue(value, n, err))
                return fail(lineNo, err);
            if (n < 0 || n > 64)
                return fail(lineNo, "instances out of range [0, 64]");
            cfg.cpuInstances = static_cast<int>(n);
        } else if (key == "threads") {
            if (!parseIntValue(value, n, err))
                return fail(lineNo, err);
            if (n < 0 || n > 1024)
                return fail(lineNo, "threads out of range [0, 1024]");
            cfg.cpuThreadsOverride = static_cast<int>(n);
        } else if (key == "level") {
            if (value == "low")
                cfg.aggressorLevel = wl::AggressorLevel::Low;
            else if (value == "medium")
                cfg.aggressorLevel = wl::AggressorLevel::Medium;
            else if (value == "high")
                cfg.aggressorLevel = wl::AggressorLevel::High;
            else
                return fail(lineNo, "unknown level '" + value +
                                    "' (low|medium|high)");
        } else if (key == "traffic") {
            if (value.empty()) {
                cfg.serving.enabled = false;
            } else {
                std::string terr;
                std::optional<serve::TrafficSpec> traffic =
                    serve::TrafficSpec::tryParse(value, &terr);
                if (!traffic)
                    return fail(lineNo, terr);
                cfg.serving.traffic = *traffic;
                cfg.serving.enabled = true;
            }
        } else if (key == "warmup") {
            if (!parseDoubleValue(value, d, err))
                return fail(lineNo, err);
            if (!(d >= 0.0) || d > 1e6)
                return fail(lineNo, "warmup out of range [0, 1e6]");
            cfg.warmup = d;
        } else if (key == "measure") {
            if (!parseDoubleValue(value, d, err))
                return fail(lineNo, err);
            if (!(d > 0.0) || d > 1e6)
                return fail(lineNo, "measure out of range (0, 1e6]");
            cfg.measure = d;
        } else if (key == "period") {
            if (!parseDoubleValue(value, d, err))
                return fail(lineNo, err);
            if (!(d > 0.0) || d > 1e4)
                return fail(lineNo, "period out of range (0, 1e4]");
            cfg.samplePeriod = d;
        } else if (key == "seed") {
            if (!parseU64Value(value, u, err))
                return fail(lineNo, err);
            cfg.seed = u;
        } else if (key == "faults") {
            std::string ferr;
            std::optional<hal::FaultPlan> plan =
                hal::FaultPlan::tryParse(value, &ferr);
            if (!plan)
                return fail(lineNo, ferr);
            cfg.faults = *plan;
        } else if (key == "fault-seed") {
            if (!parseU64Value(value, u, err))
                return fail(lineNo, err);
            cfg.faultSeed = u;
        } else if (key == "hardened") {
            if (!parseBoolValue(value, b, err))
                return fail(lineNo, err);
            cfg.hardened = b;
        } else if (key == "churn") {
            if (!parseBoolValue(value, b, err))
                return fail(lineNo, err);
            cfg.churn.enabled = b;
        } else if (key == "churn-rate") {
            if (!parseDoubleValue(value, d, err))
                return fail(lineNo, err);
            if (!(d > 0.0) || d > 1e3)
                return fail(lineNo,
                            "churn-rate out of range (0, 1e3]");
            cfg.churn.arrivalRate = d;
        } else if (key == "churn-life") {
            if (!parseDoubleValue(value, d, err))
                return fail(lineNo, err);
            if (!(d > 0.0) || d > 1e3)
                return fail(lineNo,
                            "churn-life out of range (0, 1e3]");
            cfg.churn.lifetimeScale = d;
        } else if (key == "churn-crash") {
            if (!parseDoubleValue(value, d, err))
                return fail(lineNo, err);
            if (!(d >= 0.0) || d > 1.0)
                return fail(lineNo, "churn-crash out of range [0, 1]");
            cfg.churn.crashProb = d;
        } else if (key == "churn-max") {
            if (!parseIntValue(value, n, err))
                return fail(lineNo, err);
            if (n < 1 || n > 64)
                return fail(lineNo, "churn-max out of range [1, 64]");
            cfg.churn.maxLive = static_cast<int>(n);
        } else if (key == "churn-seed") {
            if (!parseU64Value(value, u, err))
                return fail(lineNo, err);
            cfg.churn.seed = u;
        } else if (key == "churn-check") {
            if (!parseDoubleValue(value, d, err))
                return fail(lineNo, err);
            if (!(d > 0.0) || d > 1e3)
                return fail(lineNo,
                            "churn-check out of range (0, 1e3]");
            cfg.churn.checkPeriod = d;
        } else if (key == "kills") {
            cfg.killAt = 0.0;
            cfg.kills.clear();
            size_t pos = 0;
            while (pos < value.size()) {
                size_t comma = value.find(',', pos);
                if (comma == std::string::npos)
                    comma = value.size();
                std::string item = value.substr(pos, comma - pos);
                pos = comma + 1;
                if (!parseDoubleValue(item, d, err))
                    return fail(lineNo, "kills: " + err);
                if (!(d > 0.0))
                    return fail(lineNo,
                                "kill times must be positive");
                cfg.kills.push_back(d);
            }
        } else if (key == "slo") {
            if (!parseBoolValue(value, b, err))
                return fail(lineNo, err);
            cfg.slo.enabled = b;
        } else if (key == "slo-floor") {
            if (!parseDoubleValue(value, d, err))
                return fail(lineNo, err);
            if (!(d > 0.0) || d > 1.0)
                return fail(lineNo, "slo-floor out of range (0, 1]");
            cfg.slo.minPerfRatio = d;
        } else if (key == "slo-escalate") {
            if (!parseIntValue(value, n, err))
                return fail(lineNo, err);
            if (n < 1 || n > 1000)
                return fail(lineNo,
                            "slo-escalate out of range [1, 1000]");
            cfg.slo.escalateAfter = static_cast<int>(n);
        } else if (key == "slo-deescalate") {
            if (!parseIntValue(value, n, err))
                return fail(lineNo, err);
            if (n < 1 || n > 1000)
                return fail(lineNo,
                            "slo-deescalate out of range [1, 1000]");
            cfg.slo.deescalateAfter = static_cast<int>(n);
        } else {
            return fail(lineNo, "unknown key '" + key + "'");
        }
    }
    return spec;
}

ScenarioSpec
ScenarioSpec::parse(const std::string &text)
{
    std::string error;
    std::optional<ScenarioSpec> spec = tryParse(text, &error);
    if (!spec)
        sim::fatal("bad scenario spec: ", error);
    return *spec;
}

bool
ScenarioSpec::operator==(const ScenarioSpec &o) const
{
    return toString() == o.toString();
}

bool
ScenarioSpec::operator!=(const ScenarioSpec &o) const
{
    return !(*this == o);
}

} // namespace fuzz
} // namespace kelp
