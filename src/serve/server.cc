#include "serve/server.hh"

#include <algorithm>
#include <cstdio>

#include "sim/engine.hh"
#include "sim/log.hh"
#include "trace/decision_log.hh"
#include "workload/ml_infer_task.hh"

namespace kelp {
namespace serve {

RequestServer::RequestServer(const ServeConfig &cfg,
                             wl::MlInferTask &task, uint64_t seed)
    : cfg_(cfg), task_(task), gen_(cfg.traffic, seed),
      tokens_(cfg.admitBurst)
{
    KELP_EXPECTS(cfg_.enabled,
                 "RequestServer built from a disabled ServeConfig");
    KELP_EXPECTS(cfg_.maxBatch >= 1 && cfg_.maxQueue >= 1,
                 "serving layer needs a positive batch size and "
                 "queue cap");
    KELP_EXPECTS(cfg_.deadline > 0.0 && cfg_.batchTimeout > 0.0 &&
                 cfg_.tick > 0.0,
                 "serving deadlines and tick must be positive");
    KELP_EXPECTS(task_.config().externalArrivals,
                 "the inference task must run in externally-driven "
                 "mode when a RequestServer feeds it");
    if (cfg_.admitRate <= 0.0)
        cfg_.admitRate = 2.0 * cfg_.traffic.qps;
    task_.setCompletionSink(
        [this](sim::Time arrival, sim::Time completion) {
            ++completed_;
            latency_.add(completion - arrival);
        });
}

void
RequestServer::attach(sim::Engine &engine)
{
    engine.every(cfg_.tick,
                 [this](sim::Time now) { onTick(now); });
}

void
RequestServer::onTick(sim::Time now)
{
    drainArrivals(now);
    expireQueued(now);
    updateBrownout(now);
    maybeDispatch(now);
    checkConservation();
}

void
RequestServer::drainArrivals(sim::Time now)
{
    while (gen_.peekTime() <= now + 1e-12) {
        const ArrivalGenerator::Arrival a = gen_.next();
        ++arrivals_;
        // Refill the token bucket up to the arrival instant; using
        // the arrival's own timestamp (not the tick boundary) keeps
        // admission independent of the server tick length.
        tokens_ = std::min(cfg_.admitBurst,
                           tokens_ + (a.time - lastRefill_) *
                                         cfg_.admitRate);
        lastRefill_ = a.time;
        bool admit = true;
        if (level_ >= 2 && a.lowPriority) {
            // Brownout shed-low: stop low-priority at the door so
            // the queue drains toward the interactive class.
            admit = false;
        } else if (queueDepth() >=
                   static_cast<size_t>(cfg_.maxQueue)) {
            admit = false;
        } else if (tokens_ < 1.0) {
            admit = false;
        }
        if (!admit) {
            ++rejected_;
            continue;
        }
        tokens_ -= 1.0;
        ++admitted_;
        const Queued q{a.time, a.index, a.time + cfg_.deadline};
        (a.lowPriority ? loQ_ : hiQ_).push_back(q);
    }
}

void
RequestServer::expireQueued(sim::Time now)
{
    // Per class the queue is FIFO by arrival and deadlines are
    // arrival + a constant, so expired requests are exactly a prefix.
    for (std::deque<Queued> *q : {&hiQ_, &loQ_}) {
        while (!q->empty() && q->front().deadline <= now) {
            q->pop_front();
            ++expired_;
        }
    }
}

sim::Time
RequestServer::oldestWait(sim::Time now) const
{
    sim::Time oldest = now;
    if (!hiQ_.empty())
        oldest = std::min(oldest, hiQ_.front().arrival);
    if (!loQ_.empty())
        oldest = std::min(oldest, loQ_.front().arrival);
    return now - oldest;
}

double
RequestServer::effectiveBatchTimeout() const
{
    // Level 1+ "tighten": dispatch 4x sooner, trading batching
    // efficiency for queueing delay.
    return level_ >= 1 ? cfg_.batchTimeout * 0.25 : cfg_.batchTimeout;
}

void
RequestServer::updateBrownout(sim::Time now)
{
    const bool pressured =
        queueDepth() >= static_cast<size_t>(3 * cfg_.maxQueue) / 4 ||
        oldestWait(now) > 0.5 * cfg_.deadline;
    if (pressured) {
        ++pressureStreak_;
        calmStreak_ = 0;
    } else {
        ++calmStreak_;
        pressureStreak_ = 0;
    }
    if (pressured && pressureStreak_ >= cfg_.brownoutEscalate &&
        level_ < 2) {
        setLevel(now, level_ + 1, "overload pressure");
        pressureStreak_ = 0;
    } else if (!pressured &&
               calmStreak_ >= cfg_.brownoutDeescalate && level_ > 0) {
        setLevel(now, level_ - 1, "pressure cleared");
        calmStreak_ = 0;
    }
}

void
RequestServer::setLevel(sim::Time now, int to, const char *why)
{
    const int from = level_;
    level_ = to;
    ++transitions_;
    levelTrace_.push_back(LevelChange{now, from, to});
    if (to >= 2 && from < 2) {
        // Shed-low entry: drop everything already queued in the
        // low-priority class; admission keeps rejecting the class
        // until the ladder steps back down.
        shed_ += loQ_.size();
        loQ_.clear();
    }
    if (log_) {
        char reason[160];
        std::snprintf(reason, sizeof(reason),
                      "brownout level %d -> %d (%s; queue %zu/%d, "
                      "oldest wait %.4f s)",
                      from, to, why, queueDepth(), cfg_.maxQueue,
                      oldestWait(now));
        trace::DecisionEvent ev;
        ev.time = now;
        ev.kind = "brownout";
        ev.reason = reason;
        log_->append(ev);
    }
}

void
RequestServer::maybeDispatch(sim::Time now)
{
    // At most one undispatched batch sits inside the task: waiting
    // happens here, where deadlines and shedding still apply.
    if (task_.queued() != 0 || queueDepth() == 0)
        return;
    const bool full =
        queueDepth() >= static_cast<size_t>(cfg_.maxBatch);
    const bool timedOut =
        oldestWait(now) + 1e-12 >= effectiveBatchTimeout();
    if (!full && !timedOut)
        return;
    // Deterministic batch order: interactive class first, then
    // low-priority; FIFO (arrival time, then generation index)
    // within a class.
    int budget = cfg_.maxBatch;
    for (std::deque<Queued> *q : {&hiQ_, &loQ_}) {
        while (budget > 0 && !q->empty()) {
            task_.submit(q->front().arrival);
            q->pop_front();
            --budget;
        }
    }
}

uint64_t
RequestServer::inFlight() const
{
    return queueDepth() + task_.queued() + task_.inService();
}

void
RequestServer::checkConservation() const
{
    KELP_INVARIANT(arrivals_ == admitted_ + rejected_,
                   "request accounting: every arrival is admitted "
                   "or rejected");
    KELP_INVARIANT(admitted_ ==
                       completed_ + shed_ + expired_ + inFlight(),
                   "request accounting: admitted = completed + shed "
                   "+ expired + in-flight");
}

ServeStats
RequestServer::stats() const
{
    ServeStats s;
    s.arrivals = arrivals_;
    s.admitted = admitted_;
    s.rejected = rejected_;
    s.shed = shed_;
    s.expired = expired_;
    s.completed = completed_;
    s.inFlight = inFlight();
    s.brownoutTransitions = transitions_;
    s.brownoutLevel = level_;
    return s;
}

} // namespace serve
} // namespace kelp
