#include "serve/traffic.hh"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace kelp {
namespace serve {

namespace {

/** Set a failure description and return nullopt (tryParse helper). */
std::optional<TrafficSpec>
parseError(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return std::nullopt;
}

const char *
shapeKey(TrafficSpec::Shape shape)
{
    switch (shape) {
      case TrafficSpec::Shape::Poisson: return "poisson";
      case TrafficSpec::Shape::Diurnal: return "diurnal";
      case TrafficSpec::Shape::Burst: return "burst";
    }
    return "poisson";
}

} // namespace

double
TrafficSpec::rateAt(sim::Time t) const
{
    switch (shape) {
      case Shape::Poisson:
        return qps;
      case Shape::Diurnal:
        return qps *
               (1.0 + diurnalAmp *
                          std::sin(2.0 * M_PI * t / diurnalPeriod));
      case Shape::Burst: {
        if (t < spikeStart)
            return qps;
        const double phase = std::fmod(t - spikeStart, spikePeriod);
        return phase < spikeLen ? qps * spikeFactor : qps;
      }
    }
    return qps;
}

std::string
TrafficSpec::toString() const
{
    // Shortest round-trip decimal, exactly like FaultPlan::toString:
    // strtod() of the result gives back the exact double, which is
    // what makes the spec canonical.
    auto shortest = [](double v) {
        char buf[32];
        auto res = std::to_chars(buf, buf + sizeof(buf), v);
        return std::string(buf, res.ptr);
    };
    const TrafficSpec def;
    std::ostringstream os;
    os << "shape=" << shapeKey(shape);
    auto field = [&](const char *key, double value, double defValue) {
        if (value == defValue) // kelp: allow(float-eq): canonical print must distinguish exact default values
            return;
        os << "," << key << "=" << shortest(value);
    };
    field("qps", qps, def.qps);
    field("lowfrac", lowFrac, def.lowFrac);
    if (shape == Shape::Diurnal) {
        field("amp", diurnalAmp, def.diurnalAmp);
        field("period", diurnalPeriod, def.diurnalPeriod);
    } else if (shape == Shape::Burst) {
        field("factor", spikeFactor, def.spikeFactor);
        field("start", spikeStart, def.spikeStart);
        field("period", spikePeriod, def.spikePeriod);
        field("len", spikeLen, def.spikeLen);
    }
    return os.str();
}

std::optional<TrafficSpec>
TrafficSpec::tryParse(const std::string &spec, std::string *error)
{
    TrafficSpec out;
    bool haveShape = false;
    std::set<std::string> seen;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos) {
            return parseError(error, "traffic spec item '" + item +
                                     "' needs key=value");
        }
        std::string key = item.substr(0, eq);
        std::string str = item.substr(eq + 1);
        if (!seen.insert(key).second) {
            return parseError(error, "traffic spec repeats key '" +
                                     key + "'");
        }
        if (key == "shape") {
            // The shape gates which numeric keys are legal, so it
            // must come first (canonical strings always print it
            // first).
            if (seen.size() != 1) {
                return parseError(error,
                                  "traffic spec key 'shape' must "
                                  "come first");
            }
            if (str == "poisson")
                out.shape = Shape::Poisson;
            else if (str == "diurnal")
                out.shape = Shape::Diurnal;
            else if (str == "burst")
                out.shape = Shape::Burst;
            else {
                return parseError(error, "unknown traffic shape '" +
                                         str +
                                         "' (poisson|diurnal|burst)");
            }
            haveShape = true;
            continue;
        }
        if (!haveShape) {
            return parseError(error,
                              "traffic spec key 'shape' must come "
                              "first");
        }
        char *end = nullptr;
        double value = std::strtod(str.c_str(), &end);
        if (str.empty() || !end || *end != '\0') {
            return parseError(error, "traffic spec key '" + key +
                                     "' has bad value '" + str + "'");
        }
        auto positive = [&](const char *what) {
            if (value > 0.0)
                return true;
            parseError(error, std::string("traffic spec key '") +
                              what + "' must be > 0, got '" + str +
                              "'");
            return false;
        };
        if (key == "qps") {
            if (!positive("qps"))
                return std::nullopt;
            out.qps = value;
        } else if (key == "lowfrac") {
            if (value < 0.0 || value > 1.0) {
                return parseError(error,
                                  "traffic spec key 'lowfrac' must "
                                  "be in [0, 1], got '" + str + "'");
            }
            out.lowFrac = value;
        } else if (key == "amp" && out.shape == Shape::Diurnal) {
            if (value < 0.0 || value >= 1.0) {
                return parseError(error,
                                  "traffic spec key 'amp' must be in "
                                  "[0, 1), got '" + str + "'");
            }
            out.diurnalAmp = value;
        } else if (key == "period" && out.shape == Shape::Diurnal) {
            if (!positive("period"))
                return std::nullopt;
            out.diurnalPeriod = value;
        } else if (key == "factor" && out.shape == Shape::Burst) {
            if (!positive("factor"))
                return std::nullopt;
            out.spikeFactor = value;
        } else if (key == "start" && out.shape == Shape::Burst) {
            if (value < 0.0) {
                return parseError(error,
                                  "traffic spec key 'start' must be "
                                  ">= 0, got '" + str + "'");
            }
            out.spikeStart = value;
        } else if (key == "period" && out.shape == Shape::Burst) {
            if (!positive("period"))
                return std::nullopt;
            out.spikePeriod = value;
        } else if (key == "len" && out.shape == Shape::Burst) {
            if (!positive("len"))
                return std::nullopt;
            out.spikeLen = value;
        } else {
            return parseError(error,
                              "traffic spec key '" + key +
                              "' is unknown or not valid for shape '" +
                              shapeKey(out.shape) +
                              "' (qps|lowfrac; diurnal: amp|period; "
                              "burst: factor|start|period|len)");
        }
    }
    if (!haveShape)
        return parseError(error, "traffic spec needs a 'shape' key");
    if (out.shape == Shape::Burst && out.spikeLen > out.spikePeriod) {
        return parseError(error,
                          "traffic spec 'len' must not exceed "
                          "'period'");
    }
    return out;
}

TrafficSpec
TrafficSpec::parse(const std::string &spec)
{
    std::string error;
    std::optional<TrafficSpec> out = tryParse(spec, &error);
    if (!out)
        sim::fatal(error);
    return *out;
}

ArrivalGenerator::ArrivalGenerator(const TrafficSpec &spec,
                                   uint64_t seed)
    : spec_(spec), seed_(seed)
{
    KELP_EXPECTS(spec_.qps > 0.0, "arrival rate must be positive");
    prime();
}

void
ArrivalGenerator::prime()
{
    // All randomness behind arrival index_ comes from this one
    // derived stream: the unit-exponential gap first, the priority
    // class second. Regenerating any index from scratch reproduces
    // the exact same draws.
    sim::Rng rng = sim::Rng::derive(seed_, index_);
    const double rate = spec_.rateAt(lastTime_);
    KELP_ASSERT(rate > 0.0, "traffic shape produced a non-positive "
                            "arrival rate");
    nextTime_ = lastTime_ + rng.exponential(1.0) / rate;
    nextLow_ = rng.chance(spec_.lowFrac);
}

ArrivalGenerator::Arrival
ArrivalGenerator::next()
{
    Arrival a{nextTime_, index_, nextLow_};
    lastTime_ = nextTime_;
    ++index_;
    prime();
    return a;
}

} // namespace serve
} // namespace kelp
