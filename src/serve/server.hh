/**
 * @file
 * RequestServer: overload-robust open-loop request serving in front
 * of the accelerated inference task.
 *
 * The server sits between a deterministic arrival generator
 * (serve/traffic.hh) and wl::MlInferTask running in
 * externally-driven mode. Per simulated tick it:
 *
 *  1. drains arrivals due by now and runs admission control: a
 *     token bucket (rate + burst) in front of a queue-depth cap;
 *  2. expires queued requests whose deadline passed before dispatch;
 *  3. updates the hysteretic brownout ladder (see below) and sheds
 *     the lowest-priority class when it escalates far enough;
 *  4. dispatches a batch into the inference pipeline when the batch
 *     fills or the oldest admitted request has waited out the batch
 *     timeout, with deterministic tie-breaking (priority class, then
 *     arrival time, then arrival index).
 *
 * Brownout ladder (composes with the node-level kelp::SloGuard: that
 * ladder trades antagonist throughput for ML QoS, this one trades
 * request quality-of-service for stability; both audit into the same
 * DecisionLog):
 *
 *   level 0  normal       full batch timeout, all classes admitted
 *   level 1  tighten      batch timeout shrinks 4x (dispatch early)
 *   level 2  shed-low     queued low-priority shed; new low-priority
 *                         arrivals rejected at admission
 *
 * Escalation needs `brownoutEscalate` consecutive pressured ticks
 * (queue depth >= 3/4 cap, or oldest wait past half the deadline);
 * de-escalation needs `brownoutDeescalate` consecutive calm ticks.
 *
 * Drop accounting is exact and enforced every tick as a
 * KELP_INVARIANT:
 *
 *   arrivals == admitted + rejected
 *   admitted == completed + shed + expired + in-flight
 *
 * where in-flight counts requests queued here plus queued or in
 * service inside the inference task. Determinism: all state advances
 * on simulated time only; identical (config, seed) runs are
 * byte-identical.
 */

#ifndef KELP_SERVE_SERVER_HH
#define KELP_SERVE_SERVER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/traffic.hh"
#include "sim/stats.hh"

namespace kelp {

namespace sim { class Engine; }
namespace trace { class DecisionLog; }
namespace wl { class MlInferTask; }

namespace serve {

/** Serving-layer policy knobs (defaults are the bench/CLI baseline). */
struct ServeConfig
{
    /** Arrival process; only read when `enabled`. */
    TrafficSpec traffic;

    /** Master switch: false leaves the workload in its native
     * closed/open loop and builds no server. */
    bool enabled = false;

    /** Per-request deadline, seconds from arrival; a request not
     * dispatched by then is dropped as expired. */
    double deadline = 0.25;

    /** Dispatch batch size (also the inference pipeline depth). */
    int maxBatch = 4;

    /** Max wait to fill a batch before dispatching short, seconds. */
    double batchTimeout = 0.02;

    /** Token-bucket admission rate, requests/s; 0 = 2x base qps. */
    double admitRate = 0.0;

    /** Token-bucket burst capacity, requests. */
    double admitBurst = 16.0;

    /** Queue-depth admission cap, requests. */
    int maxQueue = 64;

    /** Server tick period, seconds. */
    double tick = 0.005;

    /** Pressured ticks before the brownout ladder escalates. */
    int brownoutEscalate = 3;

    /** Calm ticks before it de-escalates. */
    int brownoutDeescalate = 40;
};

/** Drop-accounting counters (whole run, never reset). */
struct ServeStats
{
    uint64_t arrivals = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    uint64_t expired = 0;
    uint64_t completed = 0;
    uint64_t inFlight = 0;
    uint64_t brownoutTransitions = 0;
    int brownoutLevel = 0;
};

class RequestServer
{
  public:
    /** One brownout-ladder move (for tests and reports). */
    struct LevelChange
    {
        sim::Time time;
        int from;
        int to;
    };

    /** The task must outlive the server and be configured with
     * externalArrivals (the server owns arrival generation). */
    RequestServer(const ServeConfig &cfg, wl::MlInferTask &task,
                  uint64_t seed);

    /** Register the serving tick with the engine. */
    void attach(sim::Engine &engine);

    /** Audit brownout transitions into this log (optional). */
    void setDecisionLog(trace::DecisionLog *log) { log_ = log; }

    /** Request latency (arrival to completion), seconds. */
    const sim::LatencyHistogram &latency() const { return latency_; }

    /** Forget recorded latencies (end-of-warmup reset); drop
     * accounting is not reset, it spans the whole run. */
    void resetLatency() { latency_.reset(); }

    /** Counters; inFlight/brownoutLevel reflect the current state. */
    ServeStats stats() const;

    /** Requests admitted but not yet completed, shed, or expired. */
    uint64_t inFlight() const;

    int brownoutLevel() const { return level_; }
    const std::vector<LevelChange> &brownoutTrace() const
    {
        return levelTrace_;
    }

    /** Enforce the drop-accounting invariants (also runs per tick). */
    void checkConservation() const;

  private:
    struct Queued
    {
        sim::Time arrival;
        uint64_t index;
        sim::Time deadline;
    };

    void onTick(sim::Time now);
    void drainArrivals(sim::Time now);
    void expireQueued(sim::Time now);
    void updateBrownout(sim::Time now);
    void maybeDispatch(sim::Time now);
    void setLevel(sim::Time now, int to, const char *why);

    size_t queueDepth() const { return hiQ_.size() + loQ_.size(); }

    /** Wait time of the oldest queued request (0 when empty). */
    sim::Time oldestWait(sim::Time now) const;

    /** Effective batch timeout at the current brownout level. */
    double effectiveBatchTimeout() const;

    ServeConfig cfg_;
    wl::MlInferTask &task_;
    ArrivalGenerator gen_;
    trace::DecisionLog *log_ = nullptr;

    /** Admitted-but-undispatched requests, FIFO per class. */
    std::deque<Queued> hiQ_;
    std::deque<Queued> loQ_;

    double tokens_;
    sim::Time lastRefill_ = 0.0;

    int level_ = 0;
    int pressureStreak_ = 0;
    int calmStreak_ = 0;
    std::vector<LevelChange> levelTrace_;

    uint64_t arrivals_ = 0;
    uint64_t admitted_ = 0;
    uint64_t rejected_ = 0;
    uint64_t shed_ = 0;
    uint64_t expired_ = 0;
    uint64_t completed_ = 0;
    uint64_t transitions_ = 0;

    sim::LatencyHistogram latency_;
};

} // namespace serve
} // namespace kelp

#endif // KELP_SERVE_SERVER_HH
