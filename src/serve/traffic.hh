/**
 * @file
 * Open-loop traffic shapes as canonical spec strings.
 *
 * A TrafficSpec describes a request-arrival process for the serving
 * layer: a homogeneous Poisson stream ("poisson"), a sinusoidal
 * day/night rate swing ("diurnal"), or a base rate with periodic
 * multiplicative spikes ("burst"). Specs round-trip through a
 * canonical string form -- `parse(toString())` is the identity and
 * `toString(parse(s))` is a fixpoint -- which makes them usable as
 * CLI flags, fuzz-grammar keys, and corpus-entry fields, mirroring
 * `hal::FaultPlan`.
 *
 * Arrival generation is deterministic and *pure in (seed, index)*:
 * the randomness behind arrival i comes from
 * `sim::Rng::derive(seed, i)` alone, never from a shared stream, so
 * any suffix of a trace can be regenerated without replaying the
 * prefix's draws and two generators with equal (spec, seed) agree
 * byte-for-byte forever.
 */

#ifndef KELP_SERVE_TRAFFIC_HH
#define KELP_SERVE_TRAFFIC_HH

#include <cstdint>
#include <optional>
#include <string>

#include "sim/types.hh"

namespace kelp {
namespace serve {

/** Canonical description of an open-loop arrival process. */
struct TrafficSpec
{
    enum class Shape { Poisson, Diurnal, Burst };

    Shape shape = Shape::Poisson;

    /** Mean (base) arrival rate, queries per second. */
    double qps = 300.0;

    /** Fraction of requests tagged low-priority (sheddable first). */
    double lowFrac = 0.2;

    /** Diurnal shape: rate(t) = qps * (1 + amp * sin(2*pi*t/period)).
     * amp must stay below 1 so the rate is always positive. */
    double diurnalAmp = 0.5;
    double diurnalPeriod = 20.0;

    /** Burst shape: rate is qps, except qps * factor inside windows
     * [start + k*period, start + k*period + len) for k = 0, 1, ... */
    double spikeFactor = 4.0;
    double spikeStart = 2.0;
    double spikePeriod = 10.0;
    double spikeLen = 2.0;

    /** Instantaneous arrival rate at simulated time t (qps). */
    double rateAt(sim::Time t) const;

    /**
     * Canonical spec string, e.g. "shape=burst,qps=600,factor=8".
     * The shape key always prints; numeric fields print iff they
     * differ bit-exactly from the defaults, and only the fields the
     * shape consumes are eligible, so the string is shortest-form
     * canonical.
     */
    std::string toString() const;

    /** Parse a spec string; nullopt + *error on any malformed,
     * unknown, duplicate, out-of-range, or wrong-shape key. */
    static std::optional<TrafficSpec>
    tryParse(const std::string &spec, std::string *error = nullptr);

    /** Parse or die (CLI convenience). */
    static TrafficSpec parse(const std::string &spec);

    bool operator==(const TrafficSpec &o) const
    {
        return toString() == o.toString();
    }
    bool operator!=(const TrafficSpec &o) const { return !(*this == o); }
};

/**
 * Deterministic arrival sequence for a TrafficSpec.
 *
 * Non-homogeneous shapes use rate-stepping: the gap after arrival i
 * is Exp(1) / rate(t_i), with the unit-exponential drawn from
 * sim::Rng::derive(seed, i). The request's priority class comes from
 * the same derived stream, so both are pure in (seed, index).
 */
class ArrivalGenerator
{
  public:
    /** One generated request. */
    struct Arrival
    {
        sim::Time time = 0.0;
        uint64_t index = 0;
        bool lowPriority = false;
    };

    ArrivalGenerator(const TrafficSpec &spec, uint64_t seed);

    /** Generate the next arrival (non-decreasing times). */
    Arrival next();

    /** Time of the next arrival without consuming it. */
    sim::Time peekTime() const { return nextTime_; }

    /** Arrivals generated so far. */
    uint64_t generated() const { return index_; }

    const TrafficSpec &spec() const { return spec_; }

  private:
    /** Compute arrival fields for the given index from (seed, index)
     * and the previous arrival time. */
    void prime();

    TrafficSpec spec_;
    uint64_t seed_;
    uint64_t index_ = 0;
    sim::Time lastTime_ = 0.0;
    sim::Time nextTime_ = 0.0;
    bool nextLow_ = false;
};

} // namespace serve
} // namespace kelp

#endif // KELP_SERVE_TRAFFIC_HH
