/**
 * @file
 * Figure 16: Cloud TPU platform remote-memory sweep (Section VI-A).
 *
 * For CNN1 and CNN2, the DRAM aggressor's dataset placement is swept
 * across the sockets (0/25/50/100% on the ML task's local socket)
 * and, within each placement, the fraction of aggressor threads on
 * the local socket is swept (0/25/50/100%). Reported values are
 * slowdowns (standalone time / achieved time; higher is worse).
 *
 * Paper shape: remote traffic (threads and data on opposite sockets)
 * causes even higher slowdown than purely local interference --
 * the coherence cost of the inter-processor link.
 */

#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "node/platform.hh"

using namespace kelp;

namespace {

void
sweep(wl::MlWorkload ml)
{
    const double data_local[] = {0.0, 0.25, 0.5, 1.0};
    const double thread_local_fracs[] = {0.0, 0.25, 0.5, 1.0};

    exp::RunResult ref = exp::standaloneReference(ml);
    node::PlatformSpec spec = node::platformFor(accel::Kind::CloudTpu);
    int threads = wl::saturatingDramThreads(spec.mem.socket.peakBw);

    exp::banner(std::string("Figure 16: ") + wl::mlName(ml) +
                " slowdown under remote memory traffic");
    exp::Table table({"%data local", "0% thr local", "25% thr local",
                      "50% thr local", "100% thr local"});

    for (double dl : data_local) {
        std::vector<std::string> row{exp::pct(dl, 0)};
        for (double tl : thread_local_fracs) {
            exp::RunConfig cfg;
            cfg.ml = ml;
            cfg.config = exp::ConfigKind::BL;
            cfg.cpu = wl::CpuWorkload::DramAggressor;
            cfg.cpuThreadsOverride = threads;
            cfg.aggressorDataLocal = dl;
            cfg.aggressorThreadsLocal = tl;
            exp::RunResult r = exp::runScenario(cfg);
            double slowdown =
                r.mlPerf > 0.0 ? ref.mlPerf / r.mlPerf : 99.0;
            row.push_back(exp::fmt(slowdown, 2));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

int
main()
{
    sweep(wl::MlWorkload::Cnn1);
    sweep(wl::MlWorkload::Cnn2);

    std::printf("\nPaper shape: slowdown peaks when traffic crosses "
                "the socket boundary (threads and data on opposite "
                "sides), exceeding the all-local case.\n");
    return 0;
}
