/**
 * @file
 * Traffic bench: open-loop request serving under colocation.
 *
 * Sweeps runtime policy (BL, CT, KP-SD, KP) x traffic shape
 * (steady Poisson, diurnal, burst at escalating spike intensity)
 * for RNN1 + Stitch x3 and reports request tail latency (p99,
 * p99.9, p99.99) plus the overload ladder's drop accounting
 * (rejected / shed / expired) per cell.
 *
 * Expected shape: under steady load every policy completes nearly
 * everything and the tails order BL > CT > KP-SD >= KP (isolation
 * helps the serving path exactly as it helps throughput). As spike
 * intensity grows the open-loop queue outruns the service rate and
 * the ladder sheds: drops concentrate in rejected/shed/expired
 * rather than unbounded queueing, and conservation (admitted =
 * completed + shed + expired + in-flight) holds in every cell.
 *
 * The final section re-runs the whole sweep serially and verifies
 * the canonical result text of every cell is byte-identical to the
 * parallel sweep -- the serving layer keeps the bit-identical
 * --jobs guarantee the rest of the repo maintains.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "exp/sweep_runner.hh"
#include "fuzz/oracle.hh"
#include "sim/log.hh"
#include "sim/options.hh"
#include "trace/run_manifest.hh"

using namespace kelp;

namespace {

struct TrafficCell
{
    std::string name;
    serve::TrafficSpec traffic;
};

std::vector<TrafficCell>
trafficCells()
{
    std::vector<TrafficCell> cells;
    {
        serve::TrafficSpec t;
        cells.push_back({"poisson", t});
    }
    {
        serve::TrafficSpec t;
        t.shape = serve::TrafficSpec::Shape::Diurnal;
        cells.push_back({"diurnal", t});
    }
    for (double factor : {2.0, 8.0, 16.0}) {
        serve::TrafficSpec t;
        t.shape = serve::TrafficSpec::Shape::Burst;
        t.spikeFactor = factor;
        cells.push_back({"burst x" + exp::fmt(factor, 0), t});
    }
    return cells;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Options opts("bench_traffic",
                      "open-loop request serving: policy x traffic "
                      "shape sweep with overload drop accounting");
    opts.addInt("jobs", 0,
                "worker threads for the sweep (0 = all cores, 1 = "
                "serial); never changes the numbers");
    opts.addDouble("warmup", 4.0, "warmup simulated seconds");
    opts.addDouble("measure", 16.0, "measured simulated seconds");
    opts.addString("manifest", "",
                   "write a run manifest JSON for the sweep to this "
                   "file");
    if (!opts.parse(argc, argv))
        return 0;
    const int jobs = static_cast<int>(opts.getInt("jobs"));
    const std::string manifestPath = opts.getString("manifest");

    exp::RunConfig base;
    base.ml = wl::MlWorkload::Rnn1;
    base.cpu = wl::CpuWorkload::Stitch;
    base.cpuInstances = 3;
    base.warmup = opts.getDouble("warmup");
    base.measure = opts.getDouble("measure");
    base.samplePeriod = 1.0;
    base.serving.enabled = true;

    const exp::ConfigKind policies[] = {
        exp::ConfigKind::BL, exp::ConfigKind::CT,
        exp::ConfigKind::KPSD, exp::ConfigKind::KP};
    const std::vector<TrafficCell> cells = trafficCells();

    std::vector<exp::RunConfig> cfgs;
    for (const TrafficCell &cell : cells) {
        for (exp::ConfigKind policy : policies) {
            exp::RunConfig cfg = base;
            cfg.config = policy;
            cfg.serving.traffic = cell.traffic;
            cfgs.push_back(cfg);
        }
    }

    exp::banner("Traffic: RNN1 + Stitch x3, open-loop request "
                "serving");
    std::printf("collecting %zu cells...\n", cfgs.size());
    const auto results = exp::runScenarios(cfgs, jobs);

    exp::Table table({"Traffic", "Policy", "p99 ms", "p99.9 ms",
                      "p99.99 ms", "done", "rej", "shed", "exp",
                      "brownouts"});
    bool conserved = true;
    uint64_t totalDropped = 0;
    size_t idx = 0;
    for (const TrafficCell &cell : cells) {
        for (exp::ConfigKind policy : policies) {
            const exp::RunResult &r = results[idx++];
            table.addRow({cell.name, exp::configName(policy),
                          exp::fmt(1e3 * r.reqP99, 2),
                          exp::fmt(1e3 * r.reqP999, 2),
                          exp::fmt(1e3 * r.reqP9999, 2),
                          std::to_string(r.reqCompleted),
                          std::to_string(r.reqRejected),
                          std::to_string(r.reqShed),
                          std::to_string(r.reqExpired),
                          std::to_string(r.brownoutTransitions)});
            conserved =
                conserved &&
                r.reqAdmitted == r.reqCompleted + r.reqShed +
                                     r.reqExpired + r.reqInFlight &&
                r.reqArrivals == r.reqAdmitted + r.reqRejected;
            totalDropped += r.reqRejected + r.reqShed + r.reqExpired;
        }
    }
    table.print();
    std::printf("\nconservation (admitted = completed + shed + "
                "expired + in-flight) in every cell: %s\n",
                conserved ? "yes" : "NO");

    // Determinism: the whole sweep, serial, must reproduce the
    // parallel results byte-for-byte.
    exp::banner("Determinism: serial replay of the sweep");
    const auto serial = exp::runScenarios(cfgs, 1);
    bool identical = serial.size() == results.size();
    for (size_t i = 0; identical && i < serial.size(); ++i)
        identical = fuzz::resultText(serial[i]) ==
                    fuzz::resultText(results[i]);
    std::printf("%zu cells, serial replay byte-identical: %s\n",
                cfgs.size(), identical ? "yes" : "NO");

    if (!manifestPath.empty()) {
        trace::RunManifest man;
        man.set("tool", "bench_traffic");
        man.set("ml", wl::mlName(base.ml));
        man.set("cpu", base.cpu ? wl::cpuName(*base.cpu) : "");
        man.set("cpu_instances", base.cpuInstances);
        man.set("warmup_s", base.warmup);
        man.set("measure_s", base.measure);
        man.set("cells", static_cast<uint64_t>(cfgs.size()));
        man.set("contract_violations", sim::contractViolations());
        man.set("conserved", conserved);
        man.set("total_dropped", totalDropped);
        man.set("replay_identical", identical);
        if (!man.writeJson(manifestPath))
            sim::fatal("cannot write manifest to ", manifestPath);
        std::printf("manifest written to %s\n", manifestPath.c_str());
    }

    std::printf("\nExpected shape: steady-load tails order "
                "BL > CT > KP-SD >= KP; spikes shift load into "
                "rejected/shed/expired instead of unbounded queues; "
                "conservation holds everywhere; serial replay is "
                "byte-identical.\n");
    return conserved && identical ? 0 : 1;
}
