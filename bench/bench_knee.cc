/**
 * @file
 * RNN1 throughput-latency sweep (the load-selection analysis the
 * paper performs but omits "for brevity", Sections III-A and V-A):
 * open-loop request rate is swept and the p95 tail plotted; the
 * operating point used throughout the paper's experiments sits at
 * the knee of this curve.
 *
 * Reported standalone and against a heavy DRAM aggressor, showing
 * how interference shifts the knee left -- the mechanism by which
 * tail latency "amplifies" under contention (Figure 3's +70%).
 */

#include <algorithm>
#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "node/platform.hh"

using namespace kelp;

namespace {

struct Point
{
    double achieved;
    double p95Ms;
};

Point
measure(double qps, bool colocated)
{
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.config = exp::ConfigKind::BL;
    cfg.openLoopQps = qps;
    cfg.warmup = 10.0;
    cfg.measure = 30.0;
    if (colocated) {
        node::PlatformSpec spec = node::platformFor(accel::Kind::TpuV1);
        cfg.cpu = wl::CpuWorkload::DramAggressor;
        cfg.cpuThreadsOverride = std::min(
            spec.topo.coresPerSocket - 4,
            wl::saturatingDramThreads(spec.mem.socket.peakBw));
    }
    exp::RunResult r = exp::runScenario(cfg);
    return {r.mlPerf, 1e3 * r.mlTailP95};
}

} // namespace

int
main()
{
    exp::banner("RNN1 throughput-latency sweep (the paper's omitted "
                "knee analysis)");
    exp::Table table({"Offered QPS", "Achieved (alone)", "p95 ms",
                      "Achieved (+DRAM)", "p95 ms (+DRAM)"});

    for (double qps : {100.0, 200.0, 300.0, 400.0, 500.0, 600.0,
                       700.0, 800.0}) {
        Point alone = measure(qps, false);
        Point mixed = measure(qps, true);
        table.addRow({exp::fmt(qps, 0), exp::fmt(alone.achieved, 0),
                      exp::fmt(alone.p95Ms, 1),
                      exp::fmt(mixed.achieved, 0),
                      exp::fmt(mixed.p95Ms, 1)});
    }
    table.print();

    std::printf("\nThe knee (where p95 turns upward) defines the "
                "operating load; interference moves it left, so a "
                "server driven at its standalone knee saturates "
                "under contention -- the QPS/tail degradations of "
                "Figures 3, 7, and 10.\n");
    return 0;
}
