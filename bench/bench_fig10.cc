/**
 * @file
 * Figure 10: memory-pressure sweep, RNN1 + CPUML.
 *
 * RNN1 (latency-critical inference, less bandwidth-sensitive) with
 * the CPUML low-priority CPU training job swept from 2 to 16
 * threads under the four configurations:
 *  (a) RNN1 QPS normalized to standalone,
 *  (b) RNN1 95%-ile tail latency normalized to standalone,
 *  (c) CPUML throughput normalized to Baseline with two threads.
 *
 * Paper shape: Baseline RNN1 QPS degrades gradually; CT gives ~9%
 * QPS loss / +13% tail at a small CPUML cost; KP-SD fully protects
 * RNN1 but costs ~33% CPUML throughput; KP lands at ~5% QPS loss,
 * +8% tail, and only ~13% CPUML loss.
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "exp/sweep_runner.hh"
#include "sim/options.hh"

using namespace kelp;

int
main(int argc, char **argv)
{
    sim::Options opts("bench_fig10",
                      "Figure 10: RNN1 + CPUML memory-pressure sweep");
    opts.addInt("jobs", 0,
                "worker threads for the sweep (0 = all cores, 1 = "
                "serial)");
    if (!opts.parse(argc, argv))
        return 0;
    const int jobs = static_cast<int>(opts.getInt("jobs"));

    const exp::ConfigKind configs[] = {
        exp::ConfigKind::BL, exp::ConfigKind::CT,
        exp::ConfigKind::KPSD, exp::ConfigKind::KP};

    // Normalization anchor for CPUML: Baseline with two threads. It
    // is job 0 of the sweep; jobs 1..32 are the 8x4 grid.
    exp::RunConfig anchor;
    anchor.ml = wl::MlWorkload::Rnn1;
    anchor.cpu = wl::CpuWorkload::Cpuml;
    anchor.cpuThreadsOverride = 2;
    anchor.config = exp::ConfigKind::BL;

    std::vector<exp::RunConfig> cfgs{anchor};
    for (int threads = 2; threads <= 16; threads += 2) {
        for (auto kind : configs) {
            exp::RunConfig cfg = anchor;
            cfg.cpuThreadsOverride = threads;
            cfg.config = kind;
            cfgs.push_back(cfg);
        }
    }
    const auto results = exp::runScenarios(cfgs, jobs);

    exp::RunResult ref = exp::standaloneReference(wl::MlWorkload::Rnn1);
    double cpuml_ref = results[0].cpuThroughput;

    exp::Table qps({"Threads", "BL", "CT", "KP-SD", "KP"});
    exp::Table tail({"Threads", "BL", "CT", "KP-SD", "KP"});
    exp::Table tput({"Threads", "BL", "CT", "KP-SD", "KP"});

    size_t idx = 1;
    for (int threads = 2; threads <= 16; threads += 2) {
        std::vector<std::string> rq{std::to_string(threads)};
        std::vector<std::string> rt{std::to_string(threads)};
        std::vector<std::string> rp{std::to_string(threads)};
        for (size_t k = 0; k < std::size(configs); ++k) {
            const exp::RunResult &r = results[idx++];
            rq.push_back(exp::fmt(r.mlPerf / ref.mlPerf, 2));
            rt.push_back(exp::fmt(r.mlTailP95 / ref.mlTailP95, 2));
            rp.push_back(exp::fmt(r.cpuThroughput / cpuml_ref, 2));
        }
        qps.addRow(rq);
        tail.addRow(rt);
        tput.addRow(rp);
    }

    exp::banner("Figure 10a: RNN1 QPS (normalized to standalone)");
    qps.print();
    exp::banner("Figure 10b: RNN1 p95 tail latency (normalized to "
                "standalone)");
    tail.print();
    exp::banner("Figure 10c: CPUML throughput (normalized to BL with "
                "2 threads)");
    tput.print();

    std::printf("\nPaper averages: CT -9%% QPS / +13%% tail / -5%% "
                "CPUML; KP-SD ~0%% QPS at -33%% CPUML; KP -5%% QPS / "
                "+8%% tail / -13%% CPUML.\n");
    return 0;
}
