/**
 * @file
 * Ablation: fine-grained hardware memory QoS (Sections VI-C/VI-D).
 *
 * The paper estimates that hardware request-priority memory
 * controllers plus per-thread backpressure would beat every software
 * configuration: ML performance at least as good as Subdomain
 * (better, because channel interleaving is preserved) with CPU
 * throughput at least as good as Kelp (no cores or prefetchers
 * sacrificed). The FG configuration implements that what-if:
 * RequestPriority controller arbitration + priority-aware
 * backpressure, no software feedback loop.
 *
 * A second ablation isolates Kelp's ingredients on CNN1 + Stitch:
 * subdomains alone, subdomains + prefetcher management (via the
 * forced sweep's best setting), and full Kelp.
 */

#include <algorithm>
#include <cstdio>
#include <iterator>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "exp/sweep_runner.hh"
#include "sim/options.hh"

using namespace kelp;

namespace {

const exp::ConfigKind kKinds[] = {
    exp::ConfigKind::BL, exp::ConfigKind::CT, exp::ConfigKind::KPSD,
    exp::ConfigKind::KP, exp::ConfigKind::FG};

std::vector<exp::RunConfig>
whatIfConfigs(wl::MlWorkload ml, wl::CpuWorkload cpu, int instances,
              int threads_override)
{
    std::vector<exp::RunConfig> cfgs;
    for (auto kind : kKinds) {
        exp::RunConfig cfg;
        cfg.ml = ml;
        cfg.cpu = cpu;
        cfg.cpuInstances = instances;
        cfg.cpuThreadsOverride = threads_override;
        cfg.config = kind;
        cfgs.push_back(cfg);
    }
    return cfgs;
}

void
printWhatIf(wl::MlWorkload ml, wl::CpuWorkload cpu,
            const std::vector<exp::RunResult> &results, size_t base)
{
    exp::RunResult ref = exp::standaloneReference(ml);

    exp::banner(std::string("Ablation: ") + wl::mlName(ml) + " + " +
                wl::cpuName(cpu) + " -- software runtimes vs. "
                "fine-grained hardware QoS");
    exp::Table table({"Config", "ML perf (norm)", "CPU tput",
                      "Saturation"});

    double bl_tput = 0.0;
    size_t idx = base;
    for (auto kind : kKinds) {
        const exp::RunResult &r = results[idx++];
        if (kind == exp::ConfigKind::BL)
            bl_tput = r.cpuThroughput;
        table.addRow({exp::configName(kind),
                      exp::fmt(r.mlPerf / ref.mlPerf, 2),
                      exp::fmt(r.cpuThroughput /
                               std::max(bl_tput, 1e-9), 2),
                      exp::fmt(r.avgSaturation, 2)});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Options opts("bench_ablation",
                      "Ablation: software runtimes vs. fine-grained "
                      "hardware QoS");
    opts.addInt("jobs", 0,
                "worker threads for the sweep (0 = all cores, 1 = "
                "serial)");
    if (!opts.parse(argc, argv))
        return 0;
    const int jobs = static_cast<int>(opts.getInt("jobs"));

    std::vector<exp::RunConfig> cfgs = whatIfConfigs(
        wl::MlWorkload::Cnn1, wl::CpuWorkload::Stitch, 6, 0);
    {
        auto second = whatIfConfigs(wl::MlWorkload::Cnn3,
                                    wl::CpuWorkload::Stream, 10, 10);
        cfgs.insert(cfgs.end(), second.begin(), second.end());
    }
    const auto results = exp::runScenarios(cfgs, jobs);

    printWhatIf(wl::MlWorkload::Cnn1, wl::CpuWorkload::Stitch,
                results, 0);
    printWhatIf(wl::MlWorkload::Cnn3, wl::CpuWorkload::Stream,
                results, std::size(kKinds));

    std::printf("\nPaper's estimate (Section VI-D): fine-grained "
                "hardware isolation achieves ML performance above "
                "Subdomain (no interleaving loss) with CPU "
                "throughput above Kelp (full bandwidth "
                "utilization).\n");
    return 0;
}
