/**
 * @file
 * Ablation: fine-grained hardware memory QoS (Sections VI-C/VI-D).
 *
 * The paper estimates that hardware request-priority memory
 * controllers plus per-thread backpressure would beat every software
 * configuration: ML performance at least as good as Subdomain
 * (better, because channel interleaving is preserved) with CPU
 * throughput at least as good as Kelp (no cores or prefetchers
 * sacrificed). The FG configuration implements that what-if:
 * RequestPriority controller arbitration + priority-aware
 * backpressure, no software feedback loop.
 *
 * A second ablation isolates Kelp's ingredients on CNN1 + Stitch:
 * subdomains alone, subdomains + prefetcher management (via the
 * forced sweep's best setting), and full Kelp.
 */

#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"

using namespace kelp;

namespace {

void
whatIf(wl::MlWorkload ml, wl::CpuWorkload cpu, int instances,
       int threads_override)
{
    exp::RunResult ref = exp::standaloneReference(ml);

    exp::banner(std::string("Ablation: ") + wl::mlName(ml) + " + " +
                wl::cpuName(cpu) + " -- software runtimes vs. "
                "fine-grained hardware QoS");
    exp::Table table({"Config", "ML perf (norm)", "CPU tput",
                      "Saturation"});

    double bl_tput = 0.0;
    for (auto kind : {exp::ConfigKind::BL, exp::ConfigKind::CT,
                      exp::ConfigKind::KPSD, exp::ConfigKind::KP,
                      exp::ConfigKind::FG}) {
        exp::RunConfig cfg;
        cfg.ml = ml;
        cfg.cpu = cpu;
        cfg.cpuInstances = instances;
        cfg.cpuThreadsOverride = threads_override;
        cfg.config = kind;
        exp::RunResult r = exp::runScenario(cfg);
        if (kind == exp::ConfigKind::BL)
            bl_tput = r.cpuThroughput;
        table.addRow({exp::configName(kind),
                      exp::fmt(r.mlPerf / ref.mlPerf, 2),
                      exp::fmt(r.cpuThroughput /
                               std::max(bl_tput, 1e-9), 2),
                      exp::fmt(r.avgSaturation, 2)});
    }
    table.print();
}

} // namespace

int
main()
{
    whatIf(wl::MlWorkload::Cnn1, wl::CpuWorkload::Stitch, 6, 0);
    whatIf(wl::MlWorkload::Cnn3, wl::CpuWorkload::Stream, 10, 10);

    std::printf("\nPaper's estimate (Section VI-D): fine-grained "
                "hardware isolation achieves ML performance above "
                "Subdomain (no interleaving loss) with CPU "
                "throughput above Kelp (full bandwidth "
                "utilization).\n");
    return 0;
}
