/**
 * @file
 * Figure 9: memory-pressure sweep, CNN1 + Stitch.
 *
 * CNN1 (highly sensitive to bandwidth contention) colocated with 1-6
 * Stitch instances (aggressive bandwidth consumers) under the four
 * configurations. Figure 9a: CNN1 performance normalized to
 * standalone. Figure 9b: Stitch throughput normalized to Baseline
 * with one instance.
 *
 * Paper shape: Baseline CNN1 falls by up to 60%; CT recovers some at
 * a Stitch cost; KP-SD protects CNN1 best but costs Stitch ~25%
 * throughput; KP is close to KP-SD on CNN1 while keeping Stitch
 * within ~9% of Baseline.
 */

#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"

using namespace kelp;

int
main()
{
    const exp::ConfigKind configs[] = {
        exp::ConfigKind::BL, exp::ConfigKind::CT,
        exp::ConfigKind::KPSD, exp::ConfigKind::KP};

    exp::RunResult ref = exp::standaloneReference(wl::MlWorkload::Cnn1);

    // Normalization anchor for Stitch: Baseline with one instance.
    exp::RunConfig anchor;
    anchor.ml = wl::MlWorkload::Cnn1;
    anchor.cpu = wl::CpuWorkload::Stitch;
    anchor.cpuInstances = 1;
    anchor.config = exp::ConfigKind::BL;
    double stitch_ref = exp::runScenario(anchor).cpuThroughput;

    exp::banner("Figure 9a: CNN1 performance (normalized to "
                "standalone)");
    exp::Table perf({"Instances", "BL", "CT", "KP-SD", "KP"});
    exp::banner("collecting...");

    std::vector<std::vector<double>> stitch_rows;
    for (int inst = 1; inst <= 6; ++inst) {
        std::vector<std::string> row{std::to_string(inst)};
        std::vector<double> stitch_row;
        for (auto kind : configs) {
            exp::RunConfig cfg = anchor;
            cfg.cpuInstances = inst;
            cfg.config = kind;
            exp::RunResult r = exp::runScenario(cfg);
            row.push_back(exp::fmt(r.mlPerf / ref.mlPerf, 2));
            stitch_row.push_back(r.cpuThroughput / stitch_ref);
        }
        perf.addRow(row);
        stitch_rows.push_back(stitch_row);
    }
    perf.print();

    exp::banner("Figure 9b: Stitch throughput (normalized to BL with "
                "1 instance)");
    exp::Table tput({"Instances", "BL", "CT", "KP-SD", "KP"});
    for (int inst = 1; inst <= 6; ++inst) {
        std::vector<std::string> row{std::to_string(inst)};
        for (double v : stitch_rows[inst - 1])
            row.push_back(exp::fmt(v, 2));
        tput.addRow(row);
    }
    tput.print();

    std::printf("\nPaper shape: BL CNN1 down to ~0.4 at 6 instances; "
                "ML ordering BL < CT < KP <= KP-SD; Stitch ordering "
                "KP-SD < CT <= KP < BL.\n");
    return 0;
}
