/**
 * @file
 * Figure 9: memory-pressure sweep, CNN1 + Stitch.
 *
 * CNN1 (highly sensitive to bandwidth contention) colocated with 1-6
 * Stitch instances (aggressive bandwidth consumers) under the four
 * configurations. Figure 9a: CNN1 performance normalized to
 * standalone. Figure 9b: Stitch throughput normalized to Baseline
 * with one instance.
 *
 * Paper shape: Baseline CNN1 falls by up to 60%; CT recovers some at
 * a Stitch cost; KP-SD protects CNN1 best but costs Stitch ~25%
 * throughput; KP is close to KP-SD on CNN1 while keeping Stitch
 * within ~9% of Baseline.
 */

#include <cstdio>
#include <iterator>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "exp/sweep_runner.hh"
#include "sim/options.hh"

using namespace kelp;

int
main(int argc, char **argv)
{
    sim::Options opts("bench_fig9",
                      "Figure 9: CNN1 + Stitch memory-pressure sweep");
    opts.addInt("jobs", 0,
                "worker threads for the sweep (0 = all cores, 1 = "
                "serial)");
    if (!opts.parse(argc, argv))
        return 0;
    const int jobs = static_cast<int>(opts.getInt("jobs"));

    const exp::ConfigKind configs[] = {
        exp::ConfigKind::BL, exp::ConfigKind::CT,
        exp::ConfigKind::KPSD, exp::ConfigKind::KP};

    // Normalization anchor for Stitch: Baseline with one instance.
    // It is job 0 of the sweep; jobs 1..24 are the 6x4 grid.
    exp::RunConfig anchor;
    anchor.ml = wl::MlWorkload::Cnn1;
    anchor.cpu = wl::CpuWorkload::Stitch;
    anchor.cpuInstances = 1;
    anchor.config = exp::ConfigKind::BL;

    std::vector<exp::RunConfig> cfgs{anchor};
    for (int inst = 1; inst <= 6; ++inst) {
        for (auto kind : configs) {
            exp::RunConfig cfg = anchor;
            cfg.cpuInstances = inst;
            cfg.config = kind;
            cfgs.push_back(cfg);
        }
    }
    const auto results = exp::runScenarios(cfgs, jobs);

    exp::RunResult ref = exp::standaloneReference(wl::MlWorkload::Cnn1);
    double stitch_ref = results[0].cpuThroughput;

    exp::banner("Figure 9a: CNN1 performance (normalized to "
                "standalone)");
    exp::Table perf({"Instances", "BL", "CT", "KP-SD", "KP"});
    exp::banner("collecting...");

    std::vector<std::vector<double>> stitch_rows;
    size_t idx = 1;
    for (int inst = 1; inst <= 6; ++inst) {
        std::vector<std::string> row{std::to_string(inst)};
        std::vector<double> stitch_row;
        for (size_t k = 0; k < std::size(configs); ++k) {
            const exp::RunResult &r = results[idx++];
            row.push_back(exp::fmt(r.mlPerf / ref.mlPerf, 2));
            stitch_row.push_back(r.cpuThroughput / stitch_ref);
        }
        perf.addRow(row);
        stitch_rows.push_back(stitch_row);
    }
    perf.print();

    exp::banner("Figure 9b: Stitch throughput (normalized to BL with "
                "1 instance)");
    exp::Table tput({"Instances", "BL", "CT", "KP-SD", "KP"});
    for (int inst = 1; inst <= 6; ++inst) {
        std::vector<std::string> row{std::to_string(inst)};
        for (double v : stitch_rows[inst - 1])
            row.push_back(exp::fmt(v, 2));
        tput.addRow(row);
    }
    tput.print();

    std::printf("\nPaper shape: BL CNN1 down to ~0.4 at 6 instances; "
                "ML ordering BL < CT < KP <= KP-SD; Stitch ordering "
                "KP-SD < CT <= KP < BL.\n");
    return 0;
}
