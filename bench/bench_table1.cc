/**
 * @file
 * Table I: accelerated ML platforms and production workloads --
 * the workload catalog's characteristics, plus the platform
 * parameters each model runs with.
 */

#include <cstdio>

#include "exp/report.hh"
#include "node/platform.hh"
#include "workload/catalog.hh"

using namespace kelp;

int
main()
{
    exp::banner("Table I: accelerated ML platforms and workloads");
    exp::Table table({"Workload", "Platform", "Description",
                      "CPU-Accel Interaction", "CPU Intensity",
                      "Host Memory Intensity"});
    for (auto ml : wl::allMlWorkloads()) {
        wl::MlDesc d = wl::mlDesc(ml);
        std::string name = d.name +
            (d.inference ? " Inference" : " Training");
        table.addRow({name, accel::kindName(d.platform), d.description,
                      d.interaction, d.cpuIntensity, d.memIntensity});
    }
    table.print();

    exp::banner("Platform models");
    exp::Table plat({"Platform", "Cores/socket", "LLC (MiB)",
                     "Peak BW (GiB/s)", "Accel TFLOPS",
                     "Accel mem BW (GiB/s)"});
    for (auto kind : {accel::Kind::TpuV1, accel::Kind::CloudTpu,
                      accel::Kind::Gpu}) {
        node::PlatformSpec p = node::platformFor(kind);
        plat.addRow({p.name, std::to_string(p.topo.coresPerSocket),
                     exp::fmt(p.topo.llcMbPerSocket, 1),
                     exp::fmt(p.mem.socket.peakBw, 1),
                     exp::fmt(p.accel.peakTflops, 1),
                     exp::fmt(p.accel.deviceMemBw, 1)});
    }
    plat.print();
    return 0;
}
