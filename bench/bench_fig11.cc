/**
 * @file
 * Figure 11: runtime parameters of the three isolation mechanisms
 * for the CNN1 + Stitch sweep -- what each controller actually did.
 *
 *  (a) CT: cores allocated to CPU tasks (normalized to max).
 *  (b) KP-SD: prefetchers enabled for CPU tasks (normalized).
 *  (c) KP: cores allocated to CPU tasks, including backfilled
 *      high-priority-subdomain cores (normalized).
 *
 * Paper shape: every mechanism throttles harder as Stitch instances
 * increase; KP leaves the CPU tasks more resources than CT at equal
 * protection (the efficiency argument of Section V-B).
 */

#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "node/platform.hh"

using namespace kelp;

int
main()
{
    node::PlatformSpec spec = node::platformFor(accel::Kind::CloudTpu);
    wl::MlDesc desc = wl::mlDesc(wl::MlWorkload::Cnn1);
    double ct_max = spec.topo.coresPerSocket - desc.mlCores;
    double sub = spec.topo.coresPerSocket / 2.0;

    exp::banner("Figure 11: controller parameters, CNN1 + Stitch "
                "(normalized to each mechanism's maximum)");
    exp::Table table({"Instances", "CT cores", "KP-SD prefetchers",
                      "KP cores (lo+backfill)"});

    for (int inst = 1; inst <= 6; ++inst) {
        exp::RunConfig cfg;
        cfg.ml = wl::MlWorkload::Cnn1;
        cfg.cpu = wl::CpuWorkload::Stitch;
        cfg.cpuInstances = inst;

        cfg.config = exp::ConfigKind::CT;
        double ct = exp::runScenario(cfg).avgLoCores / ct_max;

        cfg.config = exp::ConfigKind::KPSD;
        double kpsd = exp::runScenario(cfg).avgLoPrefetchers / sub;

        cfg.config = exp::ConfigKind::KP;
        exp::RunResult kp = exp::runScenario(cfg);
        double kp_cores =
            (kp.avgLoCores + kp.avgHiBackfill) / ct_max;

        table.addRow({std::to_string(inst), exp::fmt(ct, 2),
                      exp::fmt(kpsd, 2), exp::fmt(kp_cores, 2)});
    }
    table.print();

    std::printf("\nPaper shape: all three throttle harder with more "
                "instances; KP sustains more CPU-task cores than CT "
                "at equal or better ML protection.\n");
    return 0;
}
