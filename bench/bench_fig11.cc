/**
 * @file
 * Figure 11: runtime parameters of the three isolation mechanisms
 * for the CNN1 + Stitch sweep -- what each controller actually did.
 *
 *  (a) CT: cores allocated to CPU tasks (normalized to max).
 *  (b) KP-SD: prefetchers enabled for CPU tasks (normalized).
 *  (c) KP: cores allocated to CPU tasks, including backfilled
 *      high-priority-subdomain cores (normalized).
 *
 * Paper shape: every mechanism throttles harder as Stitch instances
 * increase; KP leaves the CPU tasks more resources than CT at equal
 * protection (the efficiency argument of Section V-B).
 *
 * With --decisions the KP runs record every controller actuation to
 * one JSONL audit log (one context per instance count); --manifest
 * summarizes the sweep.
 */

#include <cstdio>
#include <string>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "node/platform.hh"
#include "sim/log.hh"
#include "sim/options.hh"
#include "trace/decision_log.hh"
#include "trace/run_manifest.hh"

using namespace kelp;

int
main(int argc, char **argv)
{
    sim::Options opts("bench_fig11",
                      "Figure 11: controller parameters, CNN1 + "
                      "Stitch sweep");
    opts.addString("decisions", "",
                   "write the KP controller decision audit log "
                   "(JSONL, one context per instance count) to this "
                   "file");
    opts.addString("manifest", "",
                   "write a run manifest JSON for the sweep to this "
                   "file");
    if (!opts.parse(argc, argv))
        return 0;

    std::string decisionsPath = opts.getString("decisions");
    std::string manifestPath = opts.getString("manifest");

    node::PlatformSpec spec = node::platformFor(accel::Kind::CloudTpu);
    wl::MlDesc desc = wl::mlDesc(wl::MlWorkload::Cnn1);
    double ct_max = spec.topo.coresPerSocket - desc.mlCores;
    double sub = spec.topo.coresPerSocket / 2.0;

    exp::banner("Figure 11: controller parameters, CNN1 + Stitch "
                "(normalized to each mechanism's maximum)");
    exp::Table table({"Instances", "CT cores", "KP-SD prefetchers",
                      "KP cores (lo+backfill)"});

    trace::DecisionLog decisions;

    for (int inst = 1; inst <= 6; ++inst) {
        exp::RunConfig cfg;
        cfg.ml = wl::MlWorkload::Cnn1;
        cfg.cpu = wl::CpuWorkload::Stitch;
        cfg.cpuInstances = inst;

        cfg.config = exp::ConfigKind::CT;
        double ct = exp::runScenario(cfg).avgLoCores / ct_max;

        cfg.config = exp::ConfigKind::KPSD;
        double kpsd = exp::runScenario(cfg).avgLoPrefetchers / sub;

        cfg.config = exp::ConfigKind::KP;
        // The KP leg goes through the shared build+measure path so
        // the audit log can attach; with no sinks installed it is
        // the exact same computation as runScenario.
        exp::Observability obs;
        if (!decisionsPath.empty()) {
            decisions.setContext("kp-stitch-" + std::to_string(inst));
            obs.decisions = &decisions;
        }
        exp::Scenario s = exp::buildScenario(cfg, obs);
        exp::RunResult kp = exp::measureScenario(s, cfg);
        double kp_cores =
            (kp.avgLoCores + kp.avgHiBackfill) / ct_max;

        table.addRow({std::to_string(inst), exp::fmt(ct, 2),
                      exp::fmt(kpsd, 2), exp::fmt(kp_cores, 2)});
    }
    table.print();

    if (!decisionsPath.empty()) {
        if (!decisions.writeJsonl(decisionsPath))
            sim::fatal("cannot write decision log to ", decisionsPath);
        std::printf("\ndecision log written to %s (%zu events)\n",
                    decisionsPath.c_str(), decisions.size());
    }
    if (!manifestPath.empty()) {
        trace::RunManifest man;
        man.set("tool", "bench_fig11");
        man.set("ml", wl::mlName(wl::MlWorkload::Cnn1));
        man.set("cpu", wl::cpuName(wl::CpuWorkload::Stitch));
        man.set("instances_max", 6);
        man.set("contract_violations", sim::contractViolations());
        man.set("decision_events", decisions.size());
        if (!man.writeJson(manifestPath))
            sim::fatal("cannot write manifest to ", manifestPath);
        std::printf("manifest written to %s\n", manifestPath.c_str());
    }

    std::printf("\nPaper shape: all three throttle harder with more "
                "instances; KP sustains more CPU-task cores than CT "
                "at equal or better ML protection.\n");
    return 0;
}
