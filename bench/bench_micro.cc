/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): the per-tick cost
 * of the core model components, to keep the figure benches fast and
 * catch performance regressions in the simulation kernel.
 */

#include <benchmark/benchmark.h>

#include "cpu/llc.hh"
#include "exp/scenario.hh"
#include "mem/mem_system.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace kelp;

namespace {

void
BM_RngNext(benchmark::State &state)
{
    sim::Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_HistogramAdd(benchmark::State &state)
{
    sim::LatencyHistogram hist;
    sim::Rng rng(42);
    for (auto _ : state)
        hist.add(rng.exponential(0.005));
    benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramAdd);

void
BM_HistogramPercentile(benchmark::State &state)
{
    sim::LatencyHistogram hist;
    sim::Rng rng(42);
    for (int i = 0; i < 100000; ++i)
        hist.add(rng.exponential(0.005));
    for (auto _ : state)
        benchmark::DoNotOptimize(hist.percentile(95.0));
}
BENCHMARK(BM_HistogramPercentile);

void
BM_LlcApportion(benchmark::State &state)
{
    cpu::Llc llc(33.0, 12);
    std::vector<cpu::LlcRequest> reqs;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
        reqs.push_back({i, 8.0 + i, 1.0 + 0.1 * i, i == 0 ? 3 : 0,
                        0.8});
    for (auto _ : state)
        benchmark::DoNotOptimize(llc.apportion(reqs));
}
BENCHMARK(BM_LlcApportion)->Arg(4)->Arg(16);

void
BM_MemSystemResolve(benchmark::State &state)
{
    mem::MemSystemConfig cfg;
    mem::MemSystem mem(cfg);
    mem.setSncEnabled(true);
    int flows = static_cast<int>(state.range(0));
    for (auto _ : state) {
        mem.beginTick();
        for (int i = 0; i < flows; ++i) {
            mem.addFlow(i, {0, i % 2, i % 2 ? 1 : 0, i % 2},
                        2.0 + i);
        }
        mem.resolve(100 * sim::usec);
        benchmark::DoNotOptimize(mem.grant(0));
    }
}
BENCHMARK(BM_MemSystemResolve)->Arg(4)->Arg(32);

/** Same load with the resolve cache disabled: the steady-state flow
 * set above hits the cache every tick, so the delta between the two
 * is what the cache buys on the tick hot path. */
void
BM_MemSystemResolveUncached(benchmark::State &state)
{
    mem::MemSystemConfig cfg;
    mem::MemSystem mem(cfg);
    mem.setSncEnabled(true);
    mem.setResolveCacheEnabled(false);
    int flows = static_cast<int>(state.range(0));
    for (auto _ : state) {
        mem.beginTick();
        for (int i = 0; i < flows; ++i) {
            mem.addFlow(i, {0, i % 2, i % 2 ? 1 : 0, i % 2},
                        2.0 + i);
        }
        mem.resolve(100 * sim::usec);
        benchmark::DoNotOptimize(mem.grant(0));
    }
}
BENCHMARK(BM_MemSystemResolveUncached)->Arg(4)->Arg(32);

void
BM_NodeTick(benchmark::State &state)
{
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Cnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 4;
    cfg.config = exp::ConfigKind::KP;
    exp::Scenario s = exp::buildScenario(cfg);
    s.engine->run(1.0);  // settle
    for (auto _ : state)
        s.engine->run(100 * sim::usec);
}
BENCHMARK(BM_NodeTick);

void
BM_InferenceTick(benchmark::State &state)
{
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.cpu = wl::CpuWorkload::Cpuml;
    cfg.cpuThreadsOverride = 8;
    cfg.config = exp::ConfigKind::KP;
    exp::Scenario s = exp::buildScenario(cfg);
    s.engine->run(1.0);
    for (auto _ : state)
        s.engine->run(100 * sim::usec);
}
BENCHMARK(BM_InferenceTick);

} // namespace

BENCHMARK_MAIN();
