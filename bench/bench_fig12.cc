/**
 * @file
 * Figure 12: runtime parameters of the three isolation mechanisms
 * for the RNN1 + CPUML sweep (the gentler workload mix).
 *
 * Paper shape: less stress on memory bandwidth means less throttling
 * overall; the vanilla Subdomain configuration achieves enough
 * isolation without toggling any prefetchers off at low thread
 * counts; Kelp leaves CPU tasks more cores than CoreThrottle.
 */

#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "node/platform.hh"

using namespace kelp;

int
main()
{
    node::PlatformSpec spec = node::platformFor(accel::Kind::TpuV1);
    wl::MlDesc desc = wl::mlDesc(wl::MlWorkload::Rnn1);
    double ct_max = spec.topo.coresPerSocket - desc.mlCores;
    double sub = spec.topo.coresPerSocket / 2.0;

    exp::banner("Figure 12: controller parameters, RNN1 + CPUML "
                "(normalized to each mechanism's maximum)");
    exp::Table table({"Threads", "CT cores", "KP-SD prefetchers",
                      "KP cores (lo+backfill)"});

    for (int threads = 2; threads <= 16; threads += 2) {
        exp::RunConfig cfg;
        cfg.ml = wl::MlWorkload::Rnn1;
        cfg.cpu = wl::CpuWorkload::Cpuml;
        cfg.cpuThreadsOverride = threads;

        cfg.config = exp::ConfigKind::CT;
        double ct = exp::runScenario(cfg).avgLoCores / ct_max;

        cfg.config = exp::ConfigKind::KPSD;
        double kpsd = exp::runScenario(cfg).avgLoPrefetchers / sub;

        cfg.config = exp::ConfigKind::KP;
        exp::RunResult kp = exp::runScenario(cfg);
        double kp_cores =
            (kp.avgLoCores + kp.avgHiBackfill) / ct_max;

        table.addRow({std::to_string(threads), exp::fmt(ct, 2),
                      exp::fmt(kpsd, 2), exp::fmt(kp_cores, 2)});
    }
    table.print();

    std::printf("\nPaper shape: gentler mix, less throttling; KP-SD "
                "keeps most prefetchers on; KP sustains more CPU "
                "cores than CT.\n");
    return 0;
}
