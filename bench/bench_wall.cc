/**
 * @file
 * Wall-clock harness for the parallel sweep engine and the
 * event-driven tick engine.
 *
 * Part 1 times a shortened Figure 13 evaluation grid (12 mixes x 4
 * configurations) once on the serial reference path and once on the
 * worker pool, verifies the two result sets are bit-identical.
 *
 * Part 2 times a set of single-node scenarios (quiet open-loop
 * serving, steady training colocation, churn, faults, SLO ladder)
 * with the event-driven engine on and off, verifies the two
 * RunResults are bit-identical, and reports per-scenario simulated
 * ticks/s plus the speedup. CI gates these speedups against
 * bench/BENCH_wall.baseline.json (tools/check_bench_wall.py).
 *
 * Everything lands in BENCH_sweep.json so CI can track both speedups
 * over time and catch regressions in any path.
 *
 * The simulated results never depend on the clock readings below:
 * the timings are reported, not fed back.
 */
// kelp: allow-file(determinism): measurement-only wall-clock
// harness; timings are emitted to the report and JSON only and never
// influence simulation results.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/evaluation.hh"
#include "exp/pool.hh"
#include "exp/report.hh"
#include "exp/scenario.hh"
#include "exp/sweep_runner.hh"
#include "sim/options.hh"

using namespace kelp;

namespace {

double
elapsed(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Exact equality -- the pool must be bit-identical, not close. */
bool
sameGrid(const std::vector<exp::MixResult> &a,
         const std::vector<exp::MixResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        for (int k = 0; k < 4; ++k) {
            if (a[i].mlPerf[k] != b[i].mlPerf[k] ||
                a[i].cpuTput[k] != b[i].cpuTput[k] ||
                a[i].mlSlowdown[k] != b[i].mlSlowdown[k] ||
                a[i].cpuSlowdown[k] != b[i].cpuSlowdown[k])
                return false;
        }
    }
    return true;
}

/**
 * The RunResult fields the event-driven engine must reproduce
 * bitwise. The tick-engine counters are deliberately excluded: the
 * fast and full paths *should* report different call counts -- that
 * difference is the optimization.
 */
bool
sameResult(const exp::RunResult &a, const exp::RunResult &b)
{
    return a.mlPerf == b.mlPerf && a.mlTailP95 == b.mlTailP95 &&
           a.cpuThroughput == b.cpuThroughput &&
           a.avgLoCores == b.avgLoCores &&
           a.avgLoPrefetchers == b.avgLoPrefetchers &&
           a.avgHiBackfill == b.avgHiBackfill &&
           a.timeInFailSafe == b.timeInFailSafe &&
           a.failSafeEntries == b.failSafeEntries &&
           a.avgSaturation == b.avgSaturation &&
           a.avgSocketBw == b.avgSocketBw &&
           a.churnArrivals == b.churnArrivals &&
           a.churnFinishes == b.churnFinishes &&
           a.churnCrashes == b.churnCrashes &&
           a.churnRejected == b.churnRejected &&
           a.restarts == b.restarts &&
           a.sloViolations == b.sloViolations &&
           a.sloTransitions == b.sloTransitions &&
           a.sloFinalRung == b.sloFinalRung &&
           a.reqArrivals == b.reqArrivals &&
           a.reqAdmitted == b.reqAdmitted &&
           a.reqRejected == b.reqRejected && a.reqShed == b.reqShed &&
           a.reqExpired == b.reqExpired &&
           a.reqCompleted == b.reqCompleted &&
           a.reqInFlight == b.reqInFlight &&
           a.brownoutTransitions == b.brownoutTransitions &&
           a.brownoutFinal == b.brownoutFinal &&
           a.reqP99 == b.reqP99 && a.reqP999 == b.reqP999 &&
           a.reqP9999 == b.reqP9999;
}

struct EdScenario
{
    std::string name;
    exp::RunConfig cfg;
};

/**
 * The event-driven timing set. "quiet" is the headline scenario --
 * a lightly-loaded open-loop inference server, idle between
 * requests, where the engine should fast-forward nearly everything.
 * The others exercise the invalidation machinery: controller
 * sampling, churn arrivals, fault plans with controller kills, and
 * the SLO ladder.
 */
std::vector<EdScenario>
edScenarios(double warmup, double measure)
{
    std::vector<EdScenario> out;

    exp::RunConfig quiet;
    quiet.ml = wl::MlWorkload::Rnn1;
    quiet.config = exp::ConfigKind::BL;
    quiet.openLoopQps = 5.0;
    out.push_back({"quiet", quiet});

    exp::RunConfig train;
    train.ml = wl::MlWorkload::Cnn3;
    train.cpu = wl::CpuWorkload::Stitch;
    train.cpuInstances = 3;
    train.config = exp::ConfigKind::KP;
    out.push_back({"train", train});

    exp::RunConfig churn;
    churn.ml = wl::MlWorkload::Cnn1;
    churn.cpu = wl::CpuWorkload::Stitch;
    churn.cpuInstances = 3;
    churn.config = exp::ConfigKind::KP;
    churn.churn.enabled = true;
    out.push_back({"churn", churn});

    exp::RunConfig faults;
    faults.ml = wl::MlWorkload::Cnn2;
    faults.cpu = wl::CpuWorkload::Stream;
    faults.cpuInstances = 2;
    faults.config = exp::ConfigKind::KP;
    faults.faults = hal::FaultPlan::parse("drop=0.05,knobfail=0.1");
    faults.killAt = warmup + 0.25 * measure;
    out.push_back({"faults", faults});

    exp::RunConfig slo;
    slo.ml = wl::MlWorkload::Cnn1;
    slo.cpu = wl::CpuWorkload::DramAggressor;
    slo.cpuInstances = 2;
    slo.config = exp::ConfigKind::KP;
    slo.slo.enabled = true;
    out.push_back({"slo", slo});

    for (auto &s : out) {
        s.cfg.warmup = warmup;
        s.cfg.measure = measure;
    }
    return out;
}

struct EdTiming
{
    std::string name;
    double fastSec = 0.0;
    double fullSec = 0.0;
    double fastTicksPerSec = 0.0;
    double fullTicksPerSec = 0.0;
    double speedup = 0.0;
    double skipRatio = 0.0;
    bool identical = false;
};

EdTiming
timeEdScenario(const EdScenario &s)
{
    EdTiming t;
    t.name = s.name;

    // The SLO ladder consults a memoized standalone reference run;
    // compute it up front so the first timed run doesn't pay for it.
    if (s.cfg.slo.enabled)
        exp::standaloneReference(s.cfg.ml);

    exp::RunConfig fast = s.cfg;
    fast.eventDriven = true;
    auto f0 = std::chrono::steady_clock::now();
    const exp::RunResult rf = exp::runScenario(fast);
    auto f1 = std::chrono::steady_clock::now();
    t.fastSec = elapsed(f0, f1);

    exp::RunConfig full = s.cfg;
    full.eventDriven = false;
    auto g0 = std::chrono::steady_clock::now();
    const exp::RunResult rl = exp::runScenario(full);
    auto g1 = std::chrono::steady_clock::now();
    t.fullSec = elapsed(g0, g1);

    t.identical = sameResult(rf, rl);
    t.skipRatio = rf.skipRatio();
    const double ticks = static_cast<double>(rf.engineTicks);
    t.fastTicksPerSec = t.fastSec > 0.0 ? ticks / t.fastSec : 0.0;
    t.fullTicksPerSec = t.fullSec > 0.0 ? ticks / t.fullSec : 0.0;
    t.speedup = t.fastSec > 0.0 ? t.fullSec / t.fastSec : 0.0;
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Options opts("bench_wall",
                      "wall-clock timing of the evaluation grid, "
                      "serial vs. worker pool");
    opts.addInt("jobs", 0,
                "parallel worker count to time (0 = all cores)");
    opts.addDouble("warmup", 4.0, "warmup simulated seconds per run");
    opts.addDouble("measure", 4.0,
                   "measured simulated seconds per run");
    opts.addString("out", "BENCH_sweep.json", "output JSON path");
    opts.addDouble("ed-warmup", 10.0,
                   "warmup simulated seconds per event-driven "
                   "scenario");
    opts.addDouble("ed-measure", 30.0,
                   "measured simulated seconds per event-driven "
                   "scenario");
    if (!opts.parse(argc, argv))
        return 0;

    const int jobs =
        exp::resolveJobs(static_cast<int>(opts.getInt("jobs")));

    exp::GridOptions gopt;
    gopt.verbose = false;
    gopt.warmup = opts.getDouble("warmup");
    gopt.measure = opts.getDouble("measure");

    exp::banner("Wall-clock: Figure 13 grid, serial vs. worker pool");

    // Warm the standalone-reference memo outside the timed regions so
    // both configurations time exactly the grid runs.
    const auto mixes = exp::evaluationMixes();
    {
        std::vector<exp::RunConfig> cfgs;
        for (const auto &mix : mixes) {
            exp::RunConfig cfg;
            cfg.ml = mix.ml;
            cfgs.push_back(cfg);
        }
        exp::prewarmReferences(cfgs);
    }

    std::printf("grid: %zu mixes x 4 configs, warmup %.1f s, "
                "measure %.1f s (simulated)\n",
                mixes.size(), gopt.warmup, gopt.measure);

    gopt.jobs = 1;
    auto s0 = std::chrono::steady_clock::now();
    const auto serial = exp::runEvaluationGrid(gopt);
    auto s1 = std::chrono::steady_clock::now();
    const double serialSec = elapsed(s0, s1);
    std::printf("serial   (--jobs 1): %8.2f s\n", serialSec);

    gopt.jobs = jobs;
    auto p0 = std::chrono::steady_clock::now();
    const auto parallel = exp::runEvaluationGrid(gopt);
    auto p1 = std::chrono::steady_clock::now();
    const double parallelSec = elapsed(p0, p1);
    std::printf("parallel (--jobs %d): %8.2f s\n", jobs, parallelSec);

    const bool identical = sameGrid(serial, parallel);
    const double speedup =
        parallelSec > 0.0 ? serialSec / parallelSec : 0.0;
    std::printf("speedup: %.2fx, results identical: %s\n", speedup,
                identical ? "yes" : "NO");

    exp::banner("Wall-clock: event-driven engine, fast vs. full");

    const auto scenarios = edScenarios(opts.getDouble("ed-warmup"),
                                       opts.getDouble("ed-measure"));
    std::vector<EdTiming> timings;
    bool edIdentical = true;
    double logSum = 0.0;
    for (const auto &s : scenarios) {
        EdTiming t = timeEdScenario(s);
        std::printf("%-7s fast %6.2f s (%9.3g ticks/s)  "
                    "full %6.2f s (%9.3g ticks/s)  "
                    "speedup %6.2fx  skip %5.1f%%  identical: %s\n",
                    t.name.c_str(), t.fastSec, t.fastTicksPerSec,
                    t.fullSec, t.fullTicksPerSec, t.speedup,
                    100.0 * t.skipRatio, t.identical ? "yes" : "NO");
        edIdentical = edIdentical && t.identical;
        logSum += std::log(t.speedup > 0.0 ? t.speedup : 1e-9);
        timings.push_back(t);
    }
    const double geomean =
        timings.empty()
            ? 0.0
            : std::exp(logSum / static_cast<double>(timings.size()));
    const double quietSpeedup =
        timings.empty() ? 0.0 : timings.front().speedup;
    std::printf("event-driven geomean speedup: %.2fx "
                "(quiet %.2fx), results identical: %s\n",
                geomean, quietSpeedup, edIdentical ? "yes" : "NO");

    const std::string out = opts.getString("out");
    std::ofstream json(out, std::ios::trunc);
    if (!json.good()) {
        std::fprintf(stderr, "bench_wall: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    json << "{\n"
         << "  \"bench\": \"fig13_grid\",\n"
         << "  \"mixes\": " << mixes.size() << ",\n"
         << "  \"runs\": " << mixes.size() * 4 << ",\n"
         << "  \"warmup_s\": " << gopt.warmup << ",\n"
         << "  \"measure_s\": " << gopt.measure << ",\n"
         << "  \"jobs\": " << jobs << ",\n"
         << "  \"serial_seconds\": " << serialSec << ",\n"
         << "  \"parallel_seconds\": " << parallelSec << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"identical\": " << (identical ? "true" : "false")
         << ",\n"
         << "  \"event_driven\": {\n"
         << "    \"warmup_s\": " << opts.getDouble("ed-warmup")
         << ",\n"
         << "    \"measure_s\": " << opts.getDouble("ed-measure")
         << ",\n"
         << "    \"identical\": "
         << (edIdentical ? "true" : "false") << ",\n"
         << "    \"quiet_speedup\": " << quietSpeedup << ",\n"
         << "    \"geomean_speedup\": " << geomean << ",\n"
         << "    \"scenarios\": [\n";
    for (size_t i = 0; i < timings.size(); ++i) {
        const EdTiming &t = timings[i];
        json << "      {\"name\": \"" << t.name << "\", "
             << "\"fast_seconds\": " << t.fastSec << ", "
             << "\"full_seconds\": " << t.fullSec << ", "
             << "\"fast_ticks_per_sec\": " << t.fastTicksPerSec
             << ", "
             << "\"full_ticks_per_sec\": " << t.fullTicksPerSec
             << ", "
             << "\"speedup\": " << t.speedup << ", "
             << "\"skip_ratio\": " << t.skipRatio << ", "
             << "\"identical\": "
             << (t.identical ? "true" : "false") << "}"
             << (i + 1 < timings.size() ? "," : "") << "\n";
    }
    json << "    ]\n"
         << "  }\n"
         << "}\n";
    json.close();
    std::printf("wrote %s\n", out.c_str());

    return identical && edIdentical ? 0 : 1;
}
