/**
 * @file
 * Wall-clock harness for the parallel sweep engine.
 *
 * Times a shortened Figure 13 evaluation grid (12 mixes x 4
 * configurations) once on the serial reference path and once on the
 * worker pool, verifies the two result sets are bit-identical, and
 * writes BENCH_sweep.json so CI can track the speedup and catch
 * regressions in either path.
 *
 * The simulated results never depend on the clock readings below:
 * the timings are reported, not fed back.
 */
// kelp: allow-file(determinism): measurement-only wall-clock
// harness; timings are emitted to the report and JSON only and never
// influence simulation results.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/evaluation.hh"
#include "exp/pool.hh"
#include "exp/report.hh"
#include "exp/sweep_runner.hh"
#include "sim/options.hh"

using namespace kelp;

namespace {

double
elapsed(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Exact equality -- the pool must be bit-identical, not close. */
bool
sameGrid(const std::vector<exp::MixResult> &a,
         const std::vector<exp::MixResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        for (int k = 0; k < 4; ++k) {
            if (a[i].mlPerf[k] != b[i].mlPerf[k] ||
                a[i].cpuTput[k] != b[i].cpuTput[k] ||
                a[i].mlSlowdown[k] != b[i].mlSlowdown[k] ||
                a[i].cpuSlowdown[k] != b[i].cpuSlowdown[k])
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Options opts("bench_wall",
                      "wall-clock timing of the evaluation grid, "
                      "serial vs. worker pool");
    opts.addInt("jobs", 0,
                "parallel worker count to time (0 = all cores)");
    opts.addDouble("warmup", 4.0, "warmup simulated seconds per run");
    opts.addDouble("measure", 4.0,
                   "measured simulated seconds per run");
    opts.addString("out", "BENCH_sweep.json", "output JSON path");
    if (!opts.parse(argc, argv))
        return 0;

    const int jobs =
        exp::resolveJobs(static_cast<int>(opts.getInt("jobs")));

    exp::GridOptions gopt;
    gopt.verbose = false;
    gopt.warmup = opts.getDouble("warmup");
    gopt.measure = opts.getDouble("measure");

    exp::banner("Wall-clock: Figure 13 grid, serial vs. worker pool");

    // Warm the standalone-reference memo outside the timed regions so
    // both configurations time exactly the grid runs.
    const auto mixes = exp::evaluationMixes();
    {
        std::vector<exp::RunConfig> cfgs;
        for (const auto &mix : mixes) {
            exp::RunConfig cfg;
            cfg.ml = mix.ml;
            cfgs.push_back(cfg);
        }
        exp::prewarmReferences(cfgs);
    }

    std::printf("grid: %zu mixes x 4 configs, warmup %.1f s, "
                "measure %.1f s (simulated)\n",
                mixes.size(), gopt.warmup, gopt.measure);

    gopt.jobs = 1;
    auto s0 = std::chrono::steady_clock::now();
    const auto serial = exp::runEvaluationGrid(gopt);
    auto s1 = std::chrono::steady_clock::now();
    const double serialSec = elapsed(s0, s1);
    std::printf("serial   (--jobs 1): %8.2f s\n", serialSec);

    gopt.jobs = jobs;
    auto p0 = std::chrono::steady_clock::now();
    const auto parallel = exp::runEvaluationGrid(gopt);
    auto p1 = std::chrono::steady_clock::now();
    const double parallelSec = elapsed(p0, p1);
    std::printf("parallel (--jobs %d): %8.2f s\n", jobs, parallelSec);

    const bool identical = sameGrid(serial, parallel);
    const double speedup =
        parallelSec > 0.0 ? serialSec / parallelSec : 0.0;
    std::printf("speedup: %.2fx, results identical: %s\n", speedup,
                identical ? "yes" : "NO");

    const std::string out = opts.getString("out");
    std::ofstream json(out, std::ios::trunc);
    if (!json.good()) {
        std::fprintf(stderr, "bench_wall: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    json << "{\n"
         << "  \"bench\": \"fig13_grid\",\n"
         << "  \"mixes\": " << mixes.size() << ",\n"
         << "  \"runs\": " << mixes.size() * 4 << ",\n"
         << "  \"warmup_s\": " << gopt.warmup << ",\n"
         << "  \"measure_s\": " << gopt.measure << ",\n"
         << "  \"jobs\": " << jobs << ",\n"
         << "  \"serial_seconds\": " << serialSec << ",\n"
         << "  \"parallel_seconds\": " << parallelSec << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"identical\": " << (identical ? "true" : "false")
         << "\n}\n";
    json.close();
    std::printf("wrote %s\n", out.c_str());

    return identical ? 0 : 1;
}
