/**
 * @file
 * Figure 7: shared memory backpressure and prefetcher management.
 *
 * RNN1, CNN1, and CNN2 run in their own NUMA subdomain while a
 * synthetic DRAM aggressor (three intensities: L/M/H) runs in the
 * other subdomain. The controller is replaced by a fixed prefetcher
 * setting, swept from all-enabled to all-disabled, demonstrating:
 *
 *  - subdomains alone do NOT isolate: the saturated low-priority
 *    controller asserts the socket-wide distress signal and throttles
 *    the ML task's cores (paper: RNN1 -14% QPS / +16% tail, CNN1
 *    -50%, CNN2 -10% at 0% disabled under the heavy aggressor);
 *  - disabling prefetchers relieves saturation and restores most of
 *    the loss;
 *  - at low pressure the SNC latency bonus can push the ML task
 *    *above* standalone (CNN1 up to +9%, CNN2 +2%).
 *
 * Output per workload: ML performance and measured memory saturation
 * (FAST_ASSERTED duty cycle) per (aggressor level, %% prefetchers
 * disabled); 95%%-ile tail latency additionally for RNN1.
 */

#include <algorithm>
#include <cstdio>
#include <iterator>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "exp/sweep_runner.hh"
#include "sim/options.hh"

using namespace kelp;

namespace {

const double kDisabledSteps[] = {0.0, 0.25, 0.5, 0.75, 1.0};
const wl::AggressorLevel kLevels[] = {wl::AggressorLevel::Low,
                                      wl::AggressorLevel::Medium,
                                      wl::AggressorLevel::High};

std::vector<exp::RunConfig>
workloadConfigs(wl::MlWorkload ml)
{
    std::vector<exp::RunConfig> cfgs;
    for (double disabled : kDisabledSteps) {
        for (auto lv : kLevels) {
            exp::RunConfig cfg;
            cfg.ml = ml;
            cfg.config = exp::ConfigKind::KPSD;
            cfg.cpu = wl::CpuWorkload::DramAggressor;
            cfg.aggressorLevel = lv;
            cfg.forcedPrefetcherFraction = 1.0 - disabled;
            cfgs.push_back(cfg);
        }
    }
    return cfgs;
}

void
printWorkload(wl::MlWorkload ml,
              const std::vector<exp::RunResult> &results, size_t base)
{
    exp::RunResult ref = exp::standaloneReference(ml);
    bool inference = wl::mlDesc(ml).inference;

    exp::banner(std::string("Figure 7: ") + wl::mlName(ml) +
                " under subdomains + fixed prefetcher settings");

    std::vector<std::string> headers{"%PF disabled"};
    for (auto lv : kLevels) {
        std::string n = wl::aggressorLevelName(lv);
        headers.push_back("Perf-" + n);
        if (inference)
            headers.push_back("Tail-" + n);
        headers.push_back("Sat-" + n);
    }
    exp::Table table(headers);

    size_t idx = base;
    for (double disabled : kDisabledSteps) {
        std::vector<std::string> row{exp::pct(disabled, 0)};
        for (size_t l = 0; l < std::size(kLevels); ++l) {
            const exp::RunResult &r = results[idx++];
            row.push_back(exp::fmt(r.mlPerf / ref.mlPerf, 2));
            if (inference) {
                row.push_back(exp::fmt(
                    r.mlTailP95 / std::max(ref.mlTailP95, 1e-9), 2));
            }
            row.push_back(exp::fmt(r.avgSaturation, 2));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Options opts("bench_fig7",
                      "Figure 7: prefetcher sweep under subdomains");
    opts.addInt("jobs", 0,
                "worker threads for the sweep (0 = all cores, 1 = "
                "serial)");
    if (!opts.parse(argc, argv))
        return 0;
    const int jobs = static_cast<int>(opts.getInt("jobs"));

    const wl::MlWorkload workloads[] = {wl::MlWorkload::Rnn1,
                                        wl::MlWorkload::Cnn1,
                                        wl::MlWorkload::Cnn2};
    std::vector<exp::RunConfig> cfgs;
    for (auto ml : workloads) {
        auto w = workloadConfigs(ml);
        cfgs.insert(cfgs.end(), w.begin(), w.end());
    }

    const auto results = exp::runScenarios(cfgs, jobs);

    size_t base = 0;
    const size_t perWorkload =
        std::size(kDisabledSteps) * std::size(kLevels);
    for (auto ml : workloads) {
        printWorkload(ml, results, base);
        base += perWorkload;
    }

    std::printf("\nPaper shape at 0%% disabled, aggressor H: RNN1 "
                "-14%% QPS / +16%% tail, CNN1 -50%%, CNN2 -10%%; "
                "disabling prefetchers restores performance and "
                "drops saturation; best cases exceed standalone "
                "(CNN1 +9%%, CNN2 +2%%).\n");
    return 0;
}
