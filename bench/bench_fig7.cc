/**
 * @file
 * Figure 7: shared memory backpressure and prefetcher management.
 *
 * RNN1, CNN1, and CNN2 run in their own NUMA subdomain while a
 * synthetic DRAM aggressor (three intensities: L/M/H) runs in the
 * other subdomain. The controller is replaced by a fixed prefetcher
 * setting, swept from all-enabled to all-disabled, demonstrating:
 *
 *  - subdomains alone do NOT isolate: the saturated low-priority
 *    controller asserts the socket-wide distress signal and throttles
 *    the ML task's cores (paper: RNN1 -14% QPS / +16% tail, CNN1
 *    -50%, CNN2 -10% at 0% disabled under the heavy aggressor);
 *  - disabling prefetchers relieves saturation and restores most of
 *    the loss;
 *  - at low pressure the SNC latency bonus can push the ML task
 *    *above* standalone (CNN1 up to +9%, CNN2 +2%).
 *
 * Output per workload: ML performance and measured memory saturation
 * (FAST_ASSERTED duty cycle) per (aggressor level, %% prefetchers
 * disabled); 95%%-ile tail latency additionally for RNN1.
 */

#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"

using namespace kelp;

namespace {

void
sweepWorkload(wl::MlWorkload ml)
{
    const double disabled_steps[] = {0.0, 0.25, 0.5, 0.75, 1.0};
    const wl::AggressorLevel levels[] = {wl::AggressorLevel::Low,
                                         wl::AggressorLevel::Medium,
                                         wl::AggressorLevel::High};

    exp::RunResult ref = exp::standaloneReference(ml);
    bool inference = wl::mlDesc(ml).inference;

    exp::banner(std::string("Figure 7: ") + wl::mlName(ml) +
                " under subdomains + fixed prefetcher settings");

    std::vector<std::string> headers{"%PF disabled"};
    for (auto lv : levels) {
        std::string n = wl::aggressorLevelName(lv);
        headers.push_back("Perf-" + n);
        if (inference)
            headers.push_back("Tail-" + n);
        headers.push_back("Sat-" + n);
    }
    exp::Table table(headers);

    for (double disabled : disabled_steps) {
        std::vector<std::string> row{exp::pct(disabled, 0)};
        for (auto lv : levels) {
            exp::RunConfig cfg;
            cfg.ml = ml;
            cfg.config = exp::ConfigKind::KPSD;
            cfg.cpu = wl::CpuWorkload::DramAggressor;
            cfg.aggressorLevel = lv;
            cfg.forcedPrefetcherFraction = 1.0 - disabled;
            exp::RunResult r = exp::runScenario(cfg);
            row.push_back(exp::fmt(r.mlPerf / ref.mlPerf, 2));
            if (inference) {
                row.push_back(exp::fmt(
                    r.mlTailP95 / std::max(ref.mlTailP95, 1e-9), 2));
            }
            row.push_back(exp::fmt(r.avgSaturation, 2));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

int
main()
{
    sweepWorkload(wl::MlWorkload::Rnn1);
    sweepWorkload(wl::MlWorkload::Cnn1);
    sweepWorkload(wl::MlWorkload::Cnn2);

    std::printf("\nPaper shape at 0%% disabled, aggressor H: RNN1 "
                "-14%% QPS / +16%% tail, CNN1 -50%%, CNN2 -10%%; "
                "disabling prefetchers restores performance and "
                "drops saturation; best cases exceed standalone "
                "(CNN1 +9%%, CNN2 +2%%).\n");
    return 0;
}
