/**
 * @file
 * Figure 15: workload sensitivity to remote memory interference,
 * compared against LLC and local-DRAM aggressors (Section VI-A).
 *
 * Remote DRAM is the local DRAM aggressor with half its threads and
 * half its data on the other socket, exercising the inter-processor
 * link (UPI/QPI). Paper: the Cloud TPU platform is the most
 * sensitive -- Remote DRAM costs CNN1 an extra ~16% and CNN2 an
 * extra ~27% beyond local DRAM.
 */

#include <algorithm>
#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "node/platform.hh"

using namespace kelp;

int
main()
{
    exp::banner("Figure 15: sensitivity to remote memory interference "
                "(normalized performance, Baseline)");
    exp::Table table({"Workload", "LLC", "DRAM", "Remote DRAM"});

    double extra_cnn1 = 0.0, extra_cnn2 = 0.0;
    for (auto ml : wl::allMlWorkloads()) {
        exp::RunResult ref = exp::standaloneReference(ml);
        wl::MlDesc desc = wl::mlDesc(ml);
        node::PlatformSpec spec = node::platformFor(desc.platform);
        int dram_threads = std::min(
            spec.topo.coresPerSocket - desc.mlCores,
            wl::saturatingDramThreads(spec.mem.socket.peakBw));

        exp::RunConfig cfg;
        cfg.ml = ml;
        cfg.config = exp::ConfigKind::BL;

        cfg.cpu = wl::CpuWorkload::LlcAggressor;
        double llc = exp::runScenario(cfg).mlPerf / ref.mlPerf;

        cfg.cpu = wl::CpuWorkload::DramAggressor;
        cfg.cpuThreadsOverride = dram_threads;
        double dram = exp::runScenario(cfg).mlPerf / ref.mlPerf;

        // Remote DRAM: half the threads and half the dataset on the
        // remote socket.
        cfg.aggressorThreadsLocal = 0.5;
        cfg.aggressorDataLocal = 0.5;
        double remote = exp::runScenario(cfg).mlPerf / ref.mlPerf;

        table.addRow({wl::mlName(ml), exp::fmt(llc, 2),
                      exp::fmt(dram, 2), exp::fmt(remote, 2)});
        if (ml == wl::MlWorkload::Cnn1)
            extra_cnn1 = dram - remote;
        if (ml == wl::MlWorkload::Cnn2)
            extra_cnn2 = dram - remote;
    }
    table.print();

    std::printf("\nExtra degradation from remote traffic: CNN1 "
                "+%.0f%% (paper ~16%%), CNN2 +%.0f%% (paper ~27%%). "
                "The Cloud TPU platform is the most sensitive.\n",
                100.0 * extra_cnn1, 100.0 * extra_cnn2);
    return 0;
}
