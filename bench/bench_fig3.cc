/**
 * @file
 * Figure 3: RNN1 inference-server execution timeline on the TPU
 * platform, standalone vs. colocated with a heavy DRAM aggressor.
 *
 * Requests are generated serially (one at a time) to simplify the
 * trace, exactly as in the paper. The bench prints per-phase
 * durations (CPU-assist, CPU-TPU communication, TPU compute), the
 * CPU-phase inflation under contention, the service-level tail
 * inflation, and an ASCII timeline of one request in each
 * configuration.
 *
 * Paper: CPU-intensive phases inflate by up to ~51% under heavy
 * contention while the CPU-accelerator communication and TPU phases
 * are insensitive; service tail latency rises by over 70%; the phase
 * interleaving is on the order of sub-milliseconds.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "node/platform.hh"
#include "trace/timeline.hh"

using namespace kelp;

namespace {

struct PhaseStats
{
    double host = 0.0, pcie = 0.0, accel = 0.0;
    int hostN = 0, pcieN = 0, accelN = 0;
    std::vector<wl::TraceEvent> lastRequest;
    double p95 = 0.0;
};

PhaseStats
traceRun(bool colocated)
{
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Rnn1;
    cfg.config = exp::ConfigKind::BL;
    cfg.serialInference = true;
    if (colocated) {
        node::PlatformSpec spec = node::platformFor(accel::Kind::TpuV1);
        cfg.cpu = wl::CpuWorkload::DramAggressor;
        cfg.cpuThreadsOverride = std::min(
            spec.topo.coresPerSocket - 4,
            wl::saturatingDramThreads(spec.mem.socket.peakBw));
    }

    exp::Scenario s = exp::buildScenario(cfg);
    s.engine->run(5.0);  // settle

    PhaseStats stats;
    std::vector<wl::TraceEvent> events;
    s.inferTask->setTraceSink([&](const wl::TraceEvent &e) {
        events.push_back(e);
    });
    s.inferTask->resetLatency();
    s.engine->run(5.0);

    for (const auto &e : events) {
        double d = e.end - e.start;
        switch (e.kind) {
          case wl::SegmentKind::Host:
            stats.host += d;
            ++stats.hostN;
            break;
          case wl::SegmentKind::Pcie:
            stats.pcie += d;
            ++stats.pcieN;
            break;
          case wl::SegmentKind::Accel:
            stats.accel += d;
            ++stats.accelN;
            break;
        }
    }
    if (stats.hostN)
        stats.host /= stats.hostN;
    if (stats.pcieN)
        stats.pcie /= stats.pcieN;
    if (stats.accelN)
        stats.accel /= stats.accelN;

    // Keep the last full request (15 segments = 5 iterations x 3).
    stats.lastRequest = trace::lastEvents(events, 15);
    stats.p95 = s.inferTask->latency().percentile(95.0);
    return stats;
}

void
timeline(const char *label, const std::vector<wl::TraceEvent> &events)
{
    if (events.empty())
        return;
    trace::TimelineOptions opts;
    opts.accelLabel = "TPU ";
    std::printf("%s (one request)\n%s", label,
                trace::renderTimeline(events, opts).c_str());
}

} // namespace

int
main()
{
    exp::banner("Figure 3: RNN1 execution timeline, standalone vs. "
                "colocation (serial requests)");

    PhaseStats alone = traceRun(false);
    PhaseStats coloc = traceRun(true);

    exp::Table table({"Phase", "Standalone (ms)", "Colocation (ms)",
                      "Inflation"});
    table.addRow({"CPU assist (beam search)",
                  exp::fmt(sim::toMsec(alone.host), 3),
                  exp::fmt(sim::toMsec(coloc.host), 3),
                  exp::pct(coloc.host / alone.host - 1.0, 0)});
    table.addRow({"CPU-TPU communication",
                  exp::fmt(sim::toMsec(alone.pcie), 3),
                  exp::fmt(sim::toMsec(coloc.pcie), 3),
                  exp::pct(coloc.pcie / alone.pcie - 1.0, 0)});
    table.addRow({"TPU compute",
                  exp::fmt(sim::toMsec(alone.accel), 3),
                  exp::fmt(sim::toMsec(coloc.accel), 3),
                  exp::pct(coloc.accel / alone.accel - 1.0, 0)});
    table.addRow({"Service p95 latency",
                  exp::fmt(sim::toMsec(alone.p95), 3),
                  exp::fmt(sim::toMsec(coloc.p95), 3),
                  exp::pct(coloc.p95 / alone.p95 - 1.0, 0)});
    table.print();
    std::printf("\nPaper: CPU phases +51%%, communication/TPU "
                "insensitive, tail +70%%.\n\n");

    timeline("Standalone", alone.lastRequest);
    std::printf("\n");
    timeline("Colocation", coloc.lastRequest);
    return 0;
}
