/**
 * @file
 * Figure 2: distribution of 99th-percentile memory bandwidth across
 * a production fleet over one day.
 *
 * Paper: 16% of profiled servers see 99%-ile bandwidth above 70% of
 * peak -- wide presence of memory bandwidth saturation, motivating
 * the whole problem.
 */

#include <cstdio>

#include "exp/report.hh"
#include "fleet/fleet.hh"
#include "sim/options.hh"

using namespace kelp;

int
main(int argc, char **argv)
{
    sim::Options opts("bench_fig2",
                      "Figure 2: fleet-wide p99 bandwidth profile");
    opts.addInt("jobs", 0,
                "worker threads for the fleet sweep (0 = all cores, "
                "1 = serial)");
    if (!opts.parse(argc, argv))
        return 0;

    fleet::FleetConfig cfg;
    cfg.jobs = static_cast<int>(opts.getInt("jobs"));
    fleet::FleetResult result = fleet::profileFleet(cfg);

    exp::banner("Figure 2: CDF of per-server 99%-ile memory "
                "bandwidth (fraction of peak)");
    exp::Table table({"% of peak BW", "% of machines (CDF)"});
    for (const auto &[x, y] : result.cdf(11))
        table.addRow({exp::pct(x, 0), exp::pct(y, 1)});
    table.print();

    std::printf("\nServers with p99 above 70%% of peak: %s "
                "(paper: ~16%%)\n",
                exp::pct(result.fractionAbove(0.70), 1).c_str());
    return 0;
}
