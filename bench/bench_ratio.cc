/**
 * @file
 * Computation/communication-ratio sweep (the CNN1/CNN2 analysis the
 * paper performs but omits: "We also performed a sweep analysis of
 * the ratio of computation and communication between accelerator and
 * host CPU for CNN1 and CNN2. The same level of sensitivity is
 * observed across the spectrum", Section III-B).
 *
 * The step's total standalone duration is held fixed while the split
 * between the host in-feed and accelerator compute is swept; each
 * point is colocated with the saturating DRAM aggressor (Baseline)
 * and normalized to its own standalone run.
 */

#include <algorithm>
#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "node/platform.hh"
#include "workload/ml_train_task.hh"

using namespace kelp;

namespace {

/** CNN-style step with the given host share of the (fixed) budget. */
wl::StepGraph
stepWithHostShare(const wl::MlDesc &base, double host_share)
{
    // Recover the original host segment's response parameters.
    wl::HostPhaseParams host_params;
    for (const auto &st : base.step.stages)
        for (const auto &seg : st.segments)
            if (seg.kind == wl::SegmentKind::Host)
                host_params = seg.host;

    const sim::Time budget = 6.0 * sim::msec;
    wl::StepGraph g;
    g.stages.push_back(
        {{wl::hostSegment(budget * host_share, host_params),
          wl::accelSegment(budget * (1.0 - host_share))}});
    g.stages.push_back({{wl::pcieSegment(0.15 * sim::msec)}});
    return g;
}

double
runPoint(wl::MlWorkload ml, double host_share, bool colocated)
{
    wl::MlDesc desc = wl::mlDesc(ml);
    node::PlatformSpec spec = node::platformFor(desc.platform);

    node::Node node(spec);
    sim::Engine engine(100 * sim::usec);
    auto mlg = node.groups().create("ml", hal::Priority::High).id();
    auto cpu = node.groups().create("batch", hal::Priority::Low).id();
    auto &task = node.add(std::make_unique<wl::MlTrainTask>(
        desc.name, mlg, stepWithHostShare(desc, host_share),
        &node.accelerator()));
    task.setHomeSocket(0);
    if (colocated) {
        int threads = std::min(
            spec.topo.coresPerSocket - desc.mlCores,
            wl::saturatingDramThreads(spec.mem.socket.peakBw));
        auto &agg = node.add(std::make_unique<wl::BatchTask>(
            "dram", cpu,
            threads,
            wl::cpuParams(wl::CpuWorkload::DramAggressor)));
        agg.setHomeSocket(0);
    }
    node.attach(engine);
    engine.run(5.0);
    double w0 = task.completedWork();
    engine.run(20.0);
    return (task.completedWork() - w0) / 20.0;
}

void
sweep(wl::MlWorkload ml)
{
    exp::banner(std::string("Compute/communication ratio sweep: ") +
                wl::mlName(ml) + " + saturating DRAM aggressor "
                "(Baseline)");
    exp::Table table({"Host share of step", "Standalone steps/s",
                      "Colocated steps/s", "Normalized"});
    for (double share : {0.30, 0.40, 0.50, 0.60, 0.70}) {
        double alone = runPoint(ml, share, false);
        double mixed = runPoint(ml, share, true);
        table.addRow({exp::pct(share, 0), exp::fmt(alone, 1),
                      exp::fmt(mixed, 1),
                      exp::fmt(mixed / alone, 2)});
    }
    table.print();
}

} // namespace

int
main()
{
    sweep(wl::MlWorkload::Cnn1);
    sweep(wl::MlWorkload::Cnn2);

    std::printf("\nPaper: \"the same level of sensitivity is "
                "observed across the spectrum\" -- once the host "
                "phase is on or near the critical path, the "
                "degradation stays severe regardless of the exact "
                "split.\n");
    return 0;
}
