/**
 * @file
 * Figure 5: workload sensitivity to shared-resource interference.
 *
 * Four accelerated ML workloads colocated (Baseline, unmanaged) with
 * two synthetic aggressors: LLC (dataset sized to the LLC, contends
 * for cache/SMT/pipeline) and DRAM (large-array traversal, contends
 * for memory bandwidth). Performance normalized to standalone.
 *
 * Paper targets: LLC causes a noticeable ~14% average degradation;
 * DRAM causes a dramatic ~40% average loss.
 */

#include <algorithm>
#include <cstdio>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "node/platform.hh"

using namespace kelp;

int
main()
{
    exp::banner("Figure 5: sensitivity to LLC vs DRAM interference "
                "(normalized performance, Baseline)");

    exp::Table table({"Workload", "LLC", "DRAM"});
    double sum_llc = 0.0, sum_dram = 0.0;
    auto workloads = wl::allMlWorkloads();
    for (auto ml : workloads) {
        exp::RunResult ref = exp::standaloneReference(ml);
        wl::MlDesc desc = wl::mlDesc(ml);
        node::PlatformSpec spec = node::platformFor(desc.platform);

        exp::RunConfig cfg;
        cfg.ml = ml;
        cfg.config = exp::ConfigKind::BL;

        cfg.cpu = wl::CpuWorkload::LlcAggressor;
        double llc =
            exp::runScenario(cfg).mlPerf / ref.mlPerf;

        cfg.cpu = wl::CpuWorkload::DramAggressor;
        // Saturating DRAM aggressor on the cores the ML task does
        // not need.
        cfg.cpuThreadsOverride = std::min(
            spec.topo.coresPerSocket - desc.mlCores,
            wl::saturatingDramThreads(spec.mem.socket.peakBw));
        double dram =
            exp::runScenario(cfg).mlPerf / ref.mlPerf;

        table.addRow({wl::mlName(ml), exp::fmt(llc, 2),
                      exp::fmt(dram, 2)});
        sum_llc += llc;
        sum_dram += dram;
    }
    double n = static_cast<double>(workloads.size());
    table.addRow({"Average", exp::fmt(sum_llc / n, 2),
                  exp::fmt(sum_dram / n, 2)});
    table.print();

    std::printf("\nPaper: LLC average ~0.86 (14%% degradation), "
                "DRAM average ~0.60 (40%% degradation).\n");
    return 0;
}
