/**
 * @file
 * Fleet bench: the cluster-level payoff matrix of running Kelp (or
 * not) under a contention-blind vs interference-aware scheduler.
 *
 * Simulates a Kelp-managed cluster (src/cluster/) for every cell of
 * {bin-pack, interference-aware} x {BL, KP-SD, KP} and reports, per
 * cell:
 *
 *  - SLO node-hours: fraction of node-hours whose ML service met the
 *    performance-ratio floor (the Fig 14-style fleet QoS number);
 *  - stranded capacity: idle batch-thread-hours over capacity --
 *    what a conservative scheduler pays for protecting the SLO;
 *  - fleet tail: p99 across node-hours of the per-node p95 request
 *    latency (shared percentile convention);
 *  - placement/migration/eviction counts.
 *
 * The expected shape: bin-pack x BL packs bandwidth antagonists next
 * to the ML service and burns SLO node-hours; interference-aware x
 * BL protects the SLO by stranding capacity (rejecting work);
 * Kelp-managed cells pack tightly AND meet the SLO -- node-level QoS
 * buys back cluster-level capacity.
 *
 * `--diff-jobs` re-runs every cell serially and byte-compares the
 * canonical result text against the parallel run (CI cluster-smoke).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "exp/report.hh"
#include "sim/options.hh"
#include "trace/run_manifest.hh"

using namespace kelp;

namespace {

struct Cell
{
    cluster::Placement placement;
    exp::ConfigKind config;
};

cluster::ClusterConfig
cellConfig(const Cell &cell, int nodes, int epochs, uint64_t seed,
           int jobs)
{
    cluster::ClusterConfig cfg;
    cfg.placement = cell.placement;
    cfg.config = cell.config;
    cfg.nodes = nodes;
    cfg.epochs = epochs;
    cfg.seed = seed;
    cfg.jobs = jobs;
    return cfg;
}

std::string
cellName(const Cell &cell)
{
    return std::string(cluster::placementName(cell.placement)) + "/" +
           exp::configName(cell.config);
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Options opts("bench_fleet",
                      "Cluster scheduler x node config payoff matrix");
    opts.addInt("nodes", 24, "Kelp-managed nodes in the cluster");
    opts.addInt("epochs", 12, "simulated node-hours per cell");
    opts.addInt("seed", 2019, "cluster simulation seed");
    opts.addInt("jobs", 0,
                "worker threads for node evaluations (0 = all cores, "
                "1 = serial)");
    opts.addBool("diff-jobs", false,
                 "re-run serially and byte-compare against the "
                 "parallel run");
    opts.addString("manifest", "",
                   "write a run manifest (JSON) to this path");
    if (!opts.parse(argc, argv))
        return 0;

    const int nodes = static_cast<int>(opts.getInt("nodes"));
    const int epochs = static_cast<int>(opts.getInt("epochs"));
    const uint64_t seed =
        static_cast<uint64_t>(opts.getInt("seed"));
    const int jobs = static_cast<int>(opts.getInt("jobs"));

    const std::vector<Cell> cells = {
        {cluster::Placement::BinPack, exp::ConfigKind::BL},
        {cluster::Placement::BinPack, exp::ConfigKind::KPSD},
        {cluster::Placement::BinPack, exp::ConfigKind::KP},
        {cluster::Placement::InterferenceAware, exp::ConfigKind::BL},
        {cluster::Placement::InterferenceAware, exp::ConfigKind::KPSD},
        {cluster::Placement::InterferenceAware, exp::ConfigKind::KP},
    };

    exp::banner("Fleet: scheduler x node config, " +
                std::to_string(nodes) + " nodes x " +
                std::to_string(epochs) + " node-hours");

    trace::RunManifest manifest;
    manifest.set("tool", "bench_fleet");
    manifest.set("nodes", nodes);
    manifest.set("epochs", epochs);
    manifest.set("seed", seed);

    exp::Table table({"scheduler/config", "SLO node-hours",
                      "stranded", "tail p99 (ms)", "placed",
                      "rejected", "migr", "evict"});
    std::vector<cluster::ClusterResult> results;
    for (const Cell &cell : cells) {
        cluster::ClusterResult r = cluster::simulateCluster(
            cellConfig(cell, nodes, epochs, seed, jobs));
        fleet::FleetResult tails = r.tails();
        table.addRow({cellName(cell), exp::pct(r.sloFraction(), 1),
                      exp::pct(r.strandedRatio(), 1),
                      exp::fmt(tails.percentile(99.0) * 1e3, 3),
                      std::to_string(r.placed),
                      std::to_string(r.rejected),
                      std::to_string(r.migrations),
                      std::to_string(r.evictions)});

        const std::string key = cellName(cell);
        manifest.set(key + ".slo_fraction", r.sloFraction());
        manifest.set(key + ".stranded_ratio", r.strandedRatio());
        manifest.set(key + ".placed", r.placed);
        manifest.set(key + ".rejected", r.rejected);
        manifest.set(key + ".migrations", r.migrations);
        manifest.set(key + ".evictions", r.evictions);
        manifest.set(key + ".evaluations", r.evaluations);
        manifest.addSamples(key + ".node_tail_p95_s", r.tailSamples);
        results.push_back(std::move(r));
    }
    table.print();
    std::printf("\nSLO floor: perf ratio >= 0.85 per node-hour; "
                "stranded = idle batch-thread-hours / capacity.\n");

    if (opts.getBool("diff-jobs")) {
        bool identical = true;
        for (size_t i = 0; i < cells.size(); ++i) {
            cluster::ClusterResult serial = cluster::simulateCluster(
                cellConfig(cells[i], nodes, epochs, seed, 1));
            if (serial.canonicalText() !=
                results[i].canonicalText()) {
                identical = false;
                std::printf("DIFF in cell %s\n",
                            cellName(cells[i]).c_str());
            }
        }
        std::printf("jobs-diff: %s\n",
                    identical ? "identical" : "DIVERGED");
        if (!identical)
            return 1;
    }

    const std::string manifest_path = opts.getString("manifest");
    if (!manifest_path.empty() &&
        !manifest.writeJson(manifest_path)) {
        std::fprintf(stderr, "failed to write manifest: %s\n",
                     manifest_path.c_str());
        return 1;
    }
    return 0;
}
