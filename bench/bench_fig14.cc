/**
 * @file
 * Figure 14: performance-tradeoff (efficiency) comparison between
 * CT, KP-SD, and KP across all workload mixes.
 *
 * Efficiency = ML performance gain over Baseline per unit of CPU
 * throughput loss vs. Baseline (Section V-C; higher is better).
 *
 * Paper: Subdomain is least efficient (coarse fragmentation); Kelp
 * beats CoreThrottle on almost all mixes, ~17% higher on average,
 * and ~37% higher than Subdomain.
 */

#include <algorithm>
#include <cstdio>

#include "exp/evaluation.hh"
#include "exp/report.hh"
#include "sim/options.hh"

using namespace kelp;

int
main(int argc, char **argv)
{
    sim::Options opts("bench_fig14",
                      "Figure 14: efficiency across the evaluation "
                      "grid");
    opts.addInt("jobs", 0,
                "worker threads for the grid (0 = all cores, 1 = "
                "serial)");
    if (!opts.parse(argc, argv))
        return 0;

    exp::GridOptions gopt;
    gopt.jobs = static_cast<int>(opts.getInt("jobs"));

    exp::banner("Figure 14: ML gain per unit CPU loss (CT / KP-SD / "
                "KP)");
    auto grid = exp::runEvaluationGrid(gopt);

    exp::Table table({"Mix", "CT", "KP-SD", "KP"});
    double sums[3] = {0, 0, 0};
    const exp::ConfigKind kinds[] = {exp::ConfigKind::CT,
                                     exp::ConfigKind::KPSD,
                                     exp::ConfigKind::KP};
    for (const auto &r : grid) {
        std::vector<std::string> row;
        row.push_back(std::string(wl::mlName(r.mix.ml)) + "+" +
                      wl::cpuName(r.mix.cpu));
        for (int i = 0; i < 3; ++i) {
            double e = exp::efficiency(r, kinds[i]);
            // Clamp the "free lunch" sentinel for the average.
            sums[i] += std::min(e, 3.0);
            row.push_back(exp::fmt(e, 2));
        }
        table.addRow(row);
    }
    double n = static_cast<double>(grid.size());
    table.addRow({"Average", exp::fmt(sums[0] / n, 2),
                  exp::fmt(sums[1] / n, 2), exp::fmt(sums[2] / n, 2)});
    table.print();

    std::printf("\nPaper shape: KP highest on average (~+17%% over "
                "CT, ~+37%% over KP-SD); KP-SD lowest due to "
                "resource fragmentation.\n");
    return 0;
}
