/**
 * @file
 * Figure 13: ML and CPU task performance across the full evaluation
 * grid -- four ML workloads x three CPU workloads x four
 * configurations. Left axis: ML slowdown vs. standalone (average =
 * arithmetic mean). Right axis: CPU workload slowdown vs. Baseline
 * (average = harmonic mean).
 *
 * Paper headlines: vs. Baseline, Kelp cuts ML slowdown ~43% for a
 * ~24% CPU throughput cost; vs. CoreThrottle, Kelp has ~7% less ML
 * slowdown at the same CPU throughput; vs. Subdomain, Kelp trades
 * ~4% ML slowdown for ~19% more CPU throughput.
 */

#include <cstdio>

#include "exp/evaluation.hh"
#include "exp/report.hh"
#include "sim/options.hh"

using namespace kelp;

int
main(int argc, char **argv)
{
    sim::Options opts("bench_fig13",
                      "Figure 13: evaluation grid, ML vs CPU slowdown");
    opts.addInt("jobs", 0,
                "worker threads for the grid (0 = all cores, 1 = "
                "serial)");
    opts.addDouble("warmup", -1.0,
                   "override warmup seconds per run (negative = "
                   "scenario default)");
    opts.addDouble("measure", -1.0,
                   "override measure seconds per run (negative = "
                   "scenario default)");
    opts.addString("manifest", "",
                   "write a run manifest (build, grid settings, "
                   "slowdown summary) JSON to this file");
    if (!opts.parse(argc, argv))
        return 0;

    exp::GridOptions gopt;
    gopt.jobs = static_cast<int>(opts.getInt("jobs"));
    gopt.warmup = opts.getDouble("warmup");
    gopt.measure = opts.getDouble("measure");
    gopt.manifestPath = opts.getString("manifest");

    exp::banner("Figure 13: ML and CPU slowdown, all workload mixes");
    auto grid = exp::runEvaluationGrid(gopt);

    exp::Table table({"Mix", "BL ML", "CT ML", "KP-SD ML", "KP ML",
                      "BL CPU", "CT CPU", "KP-SD CPU", "KP CPU"});

    double ml_sum[4] = {0, 0, 0, 0};
    double cpu_inv_sum[4] = {0, 0, 0, 0};
    for (const auto &r : grid) {
        std::vector<std::string> row;
        row.push_back(std::string(wl::mlName(r.mix.ml)) + "+" +
                      wl::cpuName(r.mix.cpu));
        for (int i = 0; i < 4; ++i) {
            row.push_back(exp::fmt(r.mlSlowdown[i], 2));
            ml_sum[i] += r.mlSlowdown[i];
        }
        for (int i = 0; i < 4; ++i) {
            row.push_back(exp::fmt(r.cpuSlowdown[i], 2));
            cpu_inv_sum[i] += 1.0 / r.cpuSlowdown[i];
        }
        table.addRow(row);
    }

    double n = static_cast<double>(grid.size());
    std::vector<std::string> avg{"Average"};
    double ml_avg[4], cpu_avg[4];
    for (int i = 0; i < 4; ++i) {
        ml_avg[i] = ml_sum[i] / n;
        avg.push_back(exp::fmt(ml_avg[i], 2));
    }
    for (int i = 0; i < 4; ++i) {
        cpu_avg[i] = n / cpu_inv_sum[i];  // harmonic mean
        avg.push_back(exp::fmt(cpu_avg[i], 2));
    }
    table.addRow(avg);
    table.print();

    // The paper's headline deltas, recomputed from this grid.
    double kp_vs_bl_ml =
        (ml_avg[0] - ml_avg[3]) / (ml_avg[0] - 1.0 + 1e-9);
    double kp_cpu_loss = 1.0 - 1.0 / cpu_avg[3];
    double kp_vs_ct_ml = (ml_avg[1] - ml_avg[3]) / ml_avg[1];
    double ct_cpu_loss = 1.0 - 1.0 / cpu_avg[1];
    double kp_vs_kpsd_ml = (ml_avg[3] - ml_avg[2]) / ml_avg[2];
    double kpsd_cpu_loss = 1.0 - 1.0 / cpu_avg[2];

    std::printf("\nKP vs BL: ML slowdown reduced %.0f%% (paper ~43%%) "
                "at %.0f%% CPU throughput loss (paper ~24%%)\n",
                100.0 * kp_vs_bl_ml, 100.0 * kp_cpu_loss);
    std::printf("KP vs CT: ML slowdown reduced %.0f%% (paper ~7%%); "
                "CPU loss KP %.0f%% vs CT %.0f%% (paper: equal)\n",
                100.0 * kp_vs_ct_ml, 100.0 * kp_cpu_loss,
                100.0 * ct_cpu_loss);
    std::printf("KP vs KP-SD: ML slowdown higher by %.0f%% "
                "(paper ~4%%); CPU loss KP %.0f%% vs KP-SD %.0f%% "
                "(paper: ~19%% more throughput for KP)\n",
                100.0 * kp_vs_kpsd_ml, 100.0 * kp_cpu_loss,
                100.0 * kpsd_cpu_loss);
    return 0;
}
