/**
 * @file
 * Chaos bench: controller robustness under HAL fault injection.
 *
 * Sweeps fault probability x fault class for the hardened and the
 * naive full-Kelp runtime on the paper's most contention-sensitive
 * mix (CNN1 + Stitch x4) and reports ML performance (normalized to
 * the clean-telemetry KP run), CPU throughput, and time spent in the
 * watchdog's fail-safe mode.
 *
 * Expected shape: the hardened KP holds ML performance within a few
 * percent of the clean run across every fault class (the guard
 * rejects garbage, the watchdog pins a safe static partition when
 * telemetry goes dark), while the naive controller drifts: dropped
 * reads look like a quiet socket and boost the aggressor into the
 * ML task's subdomain.
 *
 * The final section replays one degraded run twice with the same
 * fault seed and verifies both the watchdog mode-transition traces
 * and the controller decision audit logs are byte-identical -- fault
 * injection and the observability layer are fully deterministic.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "exp/report.hh"
#include "exp/scenario.hh"
#include "exp/sweep_runner.hh"
#include "sim/log.hh"
#include "sim/options.hh"
#include "trace/decision_log.hh"
#include "trace/run_manifest.hh"

using namespace kelp;

namespace {

exp::RunConfig
baseConfig()
{
    exp::RunConfig cfg;
    cfg.ml = wl::MlWorkload::Cnn1;
    cfg.cpu = wl::CpuWorkload::Stitch;
    cfg.cpuInstances = 4;
    cfg.config = exp::ConfigKind::KP;
    cfg.warmup = 40.0;
    cfg.measure = 60.0;
    cfg.samplePeriod = 2.0;
    return cfg;
}

struct FaultClass
{
    const char *name;
    hal::FaultPlan (*plan)(double p);
};

hal::FaultPlan
dropPlan(double p)
{
    hal::FaultPlan f;
    f.dropProb = p;
    return f;
}

hal::FaultPlan
stuckPlan(double p)
{
    hal::FaultPlan f;
    f.stuckProb = p;
    return f;
}

hal::FaultPlan
noisePlan(double p)
{
    hal::FaultPlan f;
    f.noiseProb = p;
    f.noiseFrac = 0.3;
    return f;
}

hal::FaultPlan
spikePlan(double p)
{
    hal::FaultPlan f;
    f.spikeProb = p;
    f.spikeScale = 10.0;
    return f;
}

hal::FaultPlan
knobFailPlan(double p)
{
    hal::FaultPlan f;
    f.knobFailProb = p;
    return f;
}

hal::FaultPlan
mixedPlan(double p)
{
    hal::FaultPlan f;
    f.dropProb = p / 2.0;
    f.stuckProb = p / 4.0;
    f.noiseProb = p / 2.0;
    f.spikeProb = p / 4.0;
    f.knobFailProb = p / 2.0;
    f.knobDelayProb = p / 4.0;
    return f;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Options opts("bench_chaos",
                      "Chaos: fault-injection sweep for the hardened "
                      "and naive runtimes");
    opts.addInt("jobs", 0,
                "worker threads for the sweep (0 = all cores, 1 = "
                "serial)");
    opts.addString("manifest", "",
                   "write a run manifest JSON for the sweep to this "
                   "file");
    if (!opts.parse(argc, argv))
        return 0;
    const int jobs = static_cast<int>(opts.getInt("jobs"));
    const std::string manifestPath = opts.getString("manifest");

    const FaultClass classes[] = {
        {"drop", dropPlan},     {"stuck", stuckPlan},
        {"noise", noisePlan},   {"spike", spikePlan},
        {"knobfail", knobFailPlan}, {"mixed", mixedPlan},
    };
    const double probs[] = {0.05, 0.10, 0.20};

    exp::RunConfig base = baseConfig();
    exp::banner("Chaos: CNN1 + Stitch x4 under KP with HAL fault "
                "injection");
    std::printf("collecting (clean reference first)...\n");

    // Job 0 is the clean reference; each (class, prob) cell then
    // contributes a hardened and a naive job, in that order.
    std::vector<exp::RunConfig> cfgs{base};
    for (const FaultClass &fc : classes) {
        for (double p : probs) {
            exp::RunConfig cfg = base;
            cfg.faults = fc.plan(p);
            cfg.hardened = true;
            cfgs.push_back(cfg);
            cfg.hardened = false;
            cfgs.push_back(cfg);
        }
    }
    const auto results = exp::runScenarios(cfgs, jobs);

    const exp::RunResult &clean = results[0];
    std::printf("clean KP: ML %.2f /s, CPU %.2f units/s\n\n",
                clean.mlPerf, clean.cpuThroughput);

    exp::Table table({"Fault", "p", "ML hard", "ML naive", "CPU hard",
                      "CPU naive", "failsafe s"});
    double worstHard = 1.0;
    double worstNaiveDrop10 = 1.0;
    double hard_drop10 = 1.0;
    size_t idx = 1;
    for (const FaultClass &fc : classes) {
        for (double p : probs) {
            const exp::RunResult &hard = results[idx++];
            const exp::RunResult &naive = results[idx++];

            double mlHard = hard.mlPerf / clean.mlPerf;
            double mlNaive = naive.mlPerf / clean.mlPerf;
            table.addRow({fc.name, exp::fmt(p, 2),
                          exp::fmt(mlHard, 3), exp::fmt(mlNaive, 3),
                          exp::fmt(hard.cpuThroughput /
                                       clean.cpuThroughput, 2),
                          exp::fmt(naive.cpuThroughput /
                                       clean.cpuThroughput, 2),
                          exp::fmt(hard.timeInFailSafe, 0)});
            worstHard = std::min(worstHard, mlHard);
            // kelp: allow(float-eq): p iterates over the same
            // literal table this compares against, so the match is
            // exact by construction (no arithmetic touches p).
            if (std::string(fc.name) == "drop" && p == 0.10) {
                hard_drop10 = mlHard;
                worstNaiveDrop10 = mlNaive;
            }
        }
    }
    table.print();

    std::printf("\nworst hardened ML (any class/prob): %.3f of clean "
                "KP\n", worstHard);
    std::printf("10%% counter dropout: hardened %.3f vs naive %.3f "
                "of clean KP\n", hard_drop10, worstNaiveDrop10);

    // Determinism: same fault seed => identical watchdog transition
    // trace, bit-identical results, and a byte-identical decision
    // audit log.
    exp::banner("Determinism: replay under a heavy mixed fault plan");
    exp::RunConfig rep = base;
    rep.faults = mixedPlan(0.4);
    rep.hardened = true;
    auto replayOnce = [&rep]() {
        trace::DecisionLog decisions;
        exp::Observability obs;
        obs.decisions = &decisions;
        exp::Scenario s = exp::buildScenario(rep, obs);
        s.engine->run(rep.warmup + rep.measure);
        std::vector<runtime::RuntimeManager::ModeChange> t;
        if (s.manager)
            t = s.manager->modeTrace();
        return std::make_pair(t, decisions.toJsonl());
    };
    auto [t1, log1] = replayOnce();
    auto [t2, log2] = replayOnce();
    bool same = t1.size() == t2.size();
    for (size_t i = 0; same && i < t1.size(); ++i) {
        same = t1[i].time == t2[i].time &&
               t1[i].failSafe == t2[i].failSafe;
    }
    bool sameLog = log1 == log2 && !log1.empty();
    std::printf("transitions: %zu, replay identical: %s\n", t1.size(),
                same ? "yes" : "NO");
    std::printf("decision log: %zu bytes, replay byte-identical: %s\n",
                log1.size(), sameLog ? "yes" : "NO");

    if (!manifestPath.empty()) {
        trace::RunManifest man;
        man.set("tool", "bench_chaos");
        man.set("ml", wl::mlName(base.ml));
        man.set("cpu", base.cpu ? wl::cpuName(*base.cpu) : "");
        man.set("cpu_instances", base.cpuInstances);
        man.set("fault_cells",
                static_cast<uint64_t>(cfgs.size() - 1));
        man.set("contract_violations", sim::contractViolations());
        man.set("worst_hardened_ml_ratio", worstHard);
        man.set("replay_identical", same);
        man.set("decision_replay_identical", sameLog);
        if (!man.writeJson(manifestPath))
            sim::fatal("cannot write manifest to ", manifestPath);
        std::printf("manifest written to %s\n", manifestPath.c_str());
    }

    std::printf("\nExpected shape: hardened ML stays within a few "
                "percent of clean KP in every cell (within 5%% under "
                "10%% dropout); naive ML and/or CPU degrades "
                "measurably as p grows; fail-safe time rises with "
                "fault rate; replay is identical.\n");
    return same && sameLog ? 0 : 1;
}
